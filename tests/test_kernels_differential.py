"""Differential testing of the vectorized StandOff join kernels.

Seeded random workloads — varying region nesting, overlap density,
iteration counts and multi-region areas — must produce *identical*
``JoinResult``s under four independent implementations of every
StandOff operator:

* ``vectorized`` — the batched NumPy kernels (``core/kernels_vec.py``),
  which build columnar (offsets + values) results natively; both the
  lazy dict view and the fully-decoded ``to_dict()`` form must match;
* ``list`` / ``heap`` — the loop-lifted reference merge with either
  active-items structure (``core/mergejoin_ll.py``);
* ``naive`` — the quadratic transcription of the paper's definitions
  (``core/naive.py``), the semantic oracle.

The ``auto`` kernel must coincide with whichever of ``ll``/``vectorized``
it resolves to.  Any divergence is a bug in one of the join kernels.
"""

import random

import numpy as np
import pytest

from repro.config import (
    FAMILY_STANDOFF,
    KERNEL_AUTO,
    KERNEL_LL,
    KERNEL_VECTORIZED,
    KERNELS,
)
from repro.core import Area, IterContext, Region, RegionTable, StandoffOp
from repro.core.kernels_vec import kernel_join, vec_join
from repro.core.mergejoin_ll import ll_join
from repro.core.naive import naive_join_loop
from repro.relational import ColumnarResult
from repro.xquery import Database


# ----------------------------------------------------------------------
# workload generation
# ----------------------------------------------------------------------

def _random_area_regions(rng: random.Random, span: int, max_len: int,
                         multi_frac: float) -> list[tuple[int, int]]:
    """1-3 disjoint regions (valid Area: non-overlapping intervals)."""
    n_regions = 1
    if rng.random() < multi_frac:
        n_regions = rng.randint(2, 3)
    cursor = rng.randrange(span)
    regions = []
    for _ in range(n_regions):
        length = rng.randrange(max_len + 1)
        regions.append((cursor, cursor + length))
        # disjoint and non-touching (Area rejects adjacent regions)
        cursor += length + 2 + rng.randrange(max_len + 1)
    return regions


def make_workload(seed: int, *, n_iters: int, per_iter: int, n_cand: int,
                  span: int, max_len: int, multi_frac: float = 0.0):
    """A seeded random context + candidate table + naive-oracle inputs."""
    rng = random.Random(seed)
    ctx_rows = []
    ctx_areas = []
    node_id = 1_000
    for it in range(n_iters):
        for _ in range(per_iter):
            regions = _random_area_regions(rng, span, max_len, multi_frac)
            ctx_rows.extend((it, node_id, s, e) for s, e in regions)
            ctx_areas.append((it, node_id,
                              Area([Region(s, e) for s, e in regions])))
            node_id += 1
    cand_rows = []
    cand_areas = []
    for i in range(n_cand):
        cand_id = 500_000 + i
        regions = _random_area_regions(rng, span, max_len, multi_frac)
        cand_rows.extend((s, e, cand_id) for s, e in regions)
        cand_areas.append((cand_id,
                           Area([Region(s, e) for s, e in regions])))
    context = IterContext.from_rows(ctx_rows)
    candidates = RegionTable.from_rows(cand_rows)
    return context, candidates, ctx_areas, cand_areas


#: (seed, workload shape) grid: nesting comes from long max_len relative
#: to span, overlap density from small spans, loop lifting from n_iters.
WORKLOADS = [
    dict(seed=1, n_iters=1, per_iter=6, n_cand=12, span=50, max_len=20),
    dict(seed=2, n_iters=4, per_iter=4, n_cand=15, span=40, max_len=40),
    dict(seed=3, n_iters=12, per_iter=3, n_cand=25, span=300, max_len=10),
    dict(seed=4, n_iters=6, per_iter=5, n_cand=20, span=25, max_len=6),
    dict(seed=5, n_iters=3, per_iter=8, n_cand=30, span=1000, max_len=900),
    dict(seed=6, n_iters=8, per_iter=2, n_cand=18, span=60, max_len=0),
    dict(seed=7, n_iters=5, per_iter=4, n_cand=22, span=80, max_len=30,
         multi_frac=0.4),
    dict(seed=8, n_iters=2, per_iter=6, n_cand=16, span=35, max_len=35,
         multi_frac=0.7),
    dict(seed=9, n_iters=20, per_iter=1, n_cand=40, span=500, max_len=60),
    dict(seed=10, n_iters=7, per_iter=0, n_cand=10, span=50, max_len=10),
    dict(seed=11, n_iters=5, per_iter=3, n_cand=0, span=50, max_len=10),
]


@pytest.mark.parametrize("op", list(StandoffOp))
@pytest.mark.parametrize("shape", WORKLOADS,
                         ids=[f"w{w['seed']}" for w in WORKLOADS])
def test_vectorized_equals_list_heap_naive(op, shape):
    context, candidates, ctx_areas, cand_areas = make_workload(**shape)
    columnar = vec_join(op, context, candidates)
    assert isinstance(columnar, ColumnarResult)
    as_list = ll_join(op, context, candidates, active_structure="list")
    as_heap = ll_join(op, context, candidates, active_structure="heap")
    # The columnar result must decode to *exactly* the reference dicts
    # (same iteration keys, including empty anti-join entries).
    assert columnar.to_dict() == as_list, (op, shape)
    naive = naive_join_loop(
        op, [(it, nid, area) for it, nid, area in ctx_areas], cand_areas)
    naive = {it: ids for it, ids in naive.items() if ids or op.is_reject}
    # ll/vec omit iterations with no matches for the select joins; the
    # oracle keeps them as empty lists — normalise both sides.
    as_list = {it: ids for it, ids in as_list.items()
               if ids or op.is_reject}
    as_heap = {it: ids for it, ids in as_heap.items()
               if ids or op.is_reject}
    vec = {it: ids for it, ids in columnar.items() if ids or op.is_reject}
    naive = {it: ids for it, ids in naive.items() if ids or op.is_reject}
    assert vec == as_list, (op, shape)
    assert vec == as_heap, (op, shape)
    assert vec == naive, (op, shape)
    auto = kernel_join(op, context, candidates, kernel=KERNEL_AUTO)
    assert auto == ll_join(op, context, candidates), (op, shape)


@pytest.mark.parametrize("op", list(StandoffOp))
def test_larger_workload_vec_equals_ll(op):
    """A denser workload (naive would be quadratic — ll is the oracle)."""
    context, candidates, _ctx, _cand = make_workload(
        seed=99, n_iters=60, per_iter=10, n_cand=800, span=5_000,
        max_len=200, multi_frac=0.2)
    reference = ll_join(op, context, candidates)
    assert vec_join(op, context, candidates).to_dict() == reference
    # This shape sits above the auto threshold: must hit the same path.
    assert kernel_join(op, context, candidates,
                       kernel=KERNEL_AUTO) == reference


@pytest.mark.parametrize("op", list(StandoffOp))
def test_float_positions(op):
    """xs:double offsets exercise the non-integer (segment-loop) paths."""
    rng = random.Random(13)
    rows = []
    for it in range(6):
        for nid in range(5):
            s = rng.random() * 50
            rows.append((it, 100 + it * 10 + nid, s, s + rng.random() * 9))
    cand_rows = []
    for i in range(25):
        s = rng.random() * 50
        cand_rows.append((s, s + rng.random() * 9, 900 + i))
    context = IterContext.from_rows(rows)
    candidates = RegionTable.from_rows(cand_rows)
    assert vec_join(op, context, candidates) == \
        ll_join(op, context, candidates)


def test_empty_inputs():
    empty_ctx = IterContext.from_rows([])
    ctx = IterContext.from_rows([(0, 1, 2, 5)])
    empty_cand = RegionTable.from_rows([])
    cand = RegionTable.from_rows([(3, 4, 7)])
    for op in StandoffOp:
        assert vec_join(op, empty_ctx, cand) == \
            ll_join(op, empty_ctx, cand)
        assert vec_join(op, ctx, empty_cand) == \
            ll_join(op, ctx, empty_cand)


# ----------------------------------------------------------------------
# kernel selection plumbing
# ----------------------------------------------------------------------

def test_resolve_kernel_tracing_falls_back_to_ll():
    def resolve(name, **kwargs):
        return KERNELS.resolve(FAMILY_STANDOFF, name, **kwargs)

    assert resolve(KERNEL_VECTORIZED, tracing=True) == KERNEL_LL
    assert resolve(KERNEL_VECTORIZED) == KERNEL_VECTORIZED
    assert resolve(KERNEL_LL, tracing=True) == KERNEL_LL
    with pytest.raises(ValueError, match="unknown join kernel"):
        KERNELS.validate(FAMILY_STANDOFF, "simd")


def test_kernel_join_trace_uses_reference_path():
    context, candidates, _ctx, _cand = make_workload(
        seed=21, n_iters=3, per_iter=3, n_cand=10, span=40, max_len=15)
    events = []
    traced = kernel_join(StandoffOp.SELECT_NARROW, context, candidates,
                         kernel=KERNEL_VECTORIZED, trace=events.append)
    assert events, "tracing must produce Listing 1 events"
    assert traced == kernel_join(StandoffOp.SELECT_NARROW, context,
                                 candidates, kernel=KERNEL_VECTORIZED)


ANNOTATED = """
<doc>
  <a nr="1" start="0" end="30"/>
  <a nr="2" start="40" end="90"/>
  <b nr="3" start="5" end="12"/>
  <b nr="4" start="25" end="45"/>
  <b nr="5" start="50" end="60"/>
  <c nr="6" start="55" end="58"/>
</doc>
"""

QUERIES = [
    'doc("d.xml")//a/select-narrow::b',
    'doc("d.xml")//a/select-wide::b',
    'doc("d.xml")//a/reject-narrow::b',
    'doc("d.xml")//a/reject-wide::b',
    'for $a in doc("d.xml")//a return count($a/select-wide::b)',
    'for $b in doc("d.xml")//b return $b/select-narrow::c/@nr',
]


@pytest.mark.parametrize("strategy", ["basic", "ll"])
@pytest.mark.parametrize("query", QUERIES)
def test_engine_kernels_agree(strategy, query):
    """Real queries give the same answers under both kernels."""
    db = Database()
    db.add_document("d.xml", ANNOTATED)
    reference = db.query(query, strategy=strategy,
                         kernel=KERNEL_LL).serialize()
    vectorized = db.query(query, strategy=strategy,
                          kernel=KERNEL_VECTORIZED).serialize()
    assert vectorized == reference
    assert db.query(query, strategy=strategy,
                    kernel=KERNEL_AUTO).serialize() == reference


def test_engine_rejects_unknown_kernel():
    db = Database()
    with pytest.raises(ValueError, match="unknown join kernel"):
        db.query("1", kernel="warp9")


def test_cli_kernel_flag_and_command(tmp_path):
    from repro.cli import CliSession
    import io

    doc = tmp_path / "d.xml"
    doc.write_text(ANNOTATED)
    out = io.StringIO()
    session = CliSession(out=out)
    session.handle(f"\\load d.xml {doc}")
    session.handle("\\kernel vectorized")
    assert session.kernel == "vectorized"
    session.handle('doc("d.xml")//a/select-wide::b')
    text = out.getvalue()
    assert "kernel = vectorized" in text
    assert "(3 item(s))" in text
    session.handle("\\kernel turbo")
    assert session.kernel == "vectorized"
    assert "unknown kernel" in out.getvalue()


def test_vectorized_matches_ll_on_random_documents():
    """End-to-end randomized check through the query engine."""
    rng = random.Random(4242)
    for _ in range(8):
        parts = ["<doc>"]
        for i in range(rng.randrange(1, 16)):
            name = rng.choice(("alpha", "beta"))
            start = rng.randrange(0, 70)
            parts.append(f'<{name} nr="{i}" start="{start}" '
                         f'end="{start + rng.randrange(0, 30)}"/>')
        parts.append("</doc>")
        db = Database()
        db.add_document("d.xml", "".join(parts))
        for axis in ("select-narrow", "select-wide",
                     "reject-narrow", "reject-wide"):
            query = f'doc("d.xml")//alpha/{axis}::beta'
            for strategy in ("basic", "ll"):
                assert db.query(query, strategy=strategy,
                                kernel="vectorized").serialize() == \
                    db.query(query, strategy=strategy,
                             kernel="ll").serialize()


def test_probe_pair_estimate_saturates_instead_of_wrapping():
    """The auto-kernel density guard compares the probe-pair estimate
    against AUTO_KERNEL_MAX_PAIRS; a wrapped int64 sum would go
    negative and silently pass the guard.  The window sum must saturate
    at the cap instead."""
    from repro.config import AUTO_KERNEL_MAX_PAIRS, KERNELS
    from repro.core.kernels_vec import (
        _INT64_BUDGET,
        estimate_probe_pairs,
        saturating_pair_count,
    )

    # At the boundary: counts whose true total (2**64) wraps an int64
    # sum to exactly 0 — the worst case for the guard.
    counts = np.full(4096, 2 ** 52, dtype=np.int64)
    assert int(counts.sum()) == 0, "fixture must actually wrap"
    assert saturating_pair_count(counts) == _INT64_BUDGET
    assert saturating_pair_count(counts) > AUTO_KERNEL_MAX_PAIRS
    assert KERNELS.select("standoff", "auto", context_rows=10_000,
                          candidate_rows=10_000,
                          probe_pairs=saturating_pair_count(counts)) \
        == "ll"
    # Just below the cap the sum stays exact.
    small = np.asarray([3, 0, 41], dtype=np.int64)
    assert saturating_pair_count(small) == 44
    assert saturating_pair_count(np.empty(0, np.int64)) == 0
    # And the estimate itself remains exact on a real workload.
    context, candidates, _ctx_areas, _cand_areas = make_workload(
        11, n_iters=20, per_iter=3, n_cand=200, span=5_000, max_len=400)
    estimate = estimate_probe_pairs(context, candidates)
    assert 0 < estimate < _INT64_BUDGET
