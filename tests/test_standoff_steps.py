"""Tests for step-level execution (core/steps.py): strategies,
fragment partitioning, pushdown — directly on the core API."""

import numpy as np
import pytest

from repro.core import RegionIndex, StandoffOp, Strategy, standoff_step


@pytest.fixture
def two_fragments():
    """Two fragments with deliberately similar region layouts."""
    frag1 = RegionIndex.build([
        (1, 0, 100),     # container
        (2, 10, 20),     # inside
        (3, 150, 160),   # outside
    ])
    frag2 = RegionIndex.build([
        (1, 0, 100),
        (2, 10, 20),
        (9, 40, 50),
    ])
    return {101: frag1, 102: frag2}


ALL_STRATEGIES = [Strategy.UDF, Strategy.BASIC, Strategy.LOOP_LIFTED]


class TestStrategiesAgree:
    @pytest.mark.parametrize("op", list(StandoffOp))
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_single_fragment(self, two_fragments, op, strategy):
        context = [(0, 101, 1)]
        reference = standoff_step(op, context, two_fragments,
                                  strategy=Strategy.UDF)
        got = standoff_step(op, context, two_fragments, strategy=strategy)
        assert got == reference

    @pytest.mark.parametrize("op", list(StandoffOp))
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_multi_fragment_multi_iter(self, two_fragments, op, strategy):
        context = [(0, 101, 1), (0, 102, 1), (1, 102, 2), (2, 101, 3)]
        reference = standoff_step(op, context, two_fragments,
                                  strategy=Strategy.UDF)
        got = standoff_step(op, context, two_fragments, strategy=strategy)
        assert got == reference


class TestFragmentSemantics:
    def test_matches_only_same_fragment(self, two_fragments):
        result = standoff_step(StandoffOp.SELECT_NARROW, [(0, 101, 1)],
                               two_fragments)
        # fragment 102's node 2 (also inside [0,100]) must not appear
        assert result == {0: [(101, 1), (101, 2)]}

    def test_results_in_fragment_then_id_order(self, two_fragments):
        result = standoff_step(StandoffOp.SELECT_NARROW,
                               [(0, 101, 1), (0, 102, 1)], two_fragments)
        assert result[0] == [(101, 1), (101, 2), (102, 1), (102, 2),
                             (102, 9)]

    def test_unknown_fragment_ignored(self, two_fragments):
        result = standoff_step(StandoffOp.SELECT_NARROW, [(0, 999, 1)],
                               two_fragments)
        assert result == {}

    def test_context_node_without_region_ignored(self, two_fragments):
        result = standoff_step(StandoffOp.SELECT_NARROW, [(0, 101, 777)],
                               two_fragments)
        assert result == {}


class TestPushdown:
    def test_candidate_restriction(self, two_fragments):
        result = standoff_step(
            StandoffOp.SELECT_NARROW, [(0, 101, 1)], two_fragments,
            candidate_ids={101: np.asarray([2])})
        assert result == {0: [(101, 2)]}

    def test_fragment_missing_from_candidate_map_skipped(
            self, two_fragments):
        result = standoff_step(
            StandoffOp.SELECT_NARROW, [(0, 101, 1), (0, 102, 1)],
            two_fragments, candidate_ids={101: np.asarray([2])})
        assert result == {0: [(101, 2)]}

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_pushdown_equals_postfilter(self, two_fragments, strategy):
        wanted = {2, 9}
        pushed = standoff_step(
            StandoffOp.SELECT_WIDE, [(0, 101, 1), (0, 102, 1)],
            two_fragments,
            candidate_ids={101: np.asarray([2, 9]),
                           102: np.asarray([2, 9])},
            strategy=strategy)
        full = standoff_step(StandoffOp.SELECT_WIDE,
                             [(0, 101, 1), (0, 102, 1)], two_fragments,
                             strategy=strategy)
        filtered = {it: [(f, n) for f, n in pairs if n in wanted]
                    for it, pairs in full.items()}
        assert pushed == filtered


class TestStrategyParsing:
    def test_from_name(self):
        assert Strategy.from_name("udf") is Strategy.UDF
        assert Strategy.from_name("ll") is Strategy.LOOP_LIFTED
        assert Strategy.from_name("LOOP_LIFTED") is Strategy.LOOP_LIFTED

    def test_unknown(self):
        with pytest.raises(ValueError):
            Strategy.from_name("quantum")
