"""Concurrent query serving: same answers under load, bounded lanes.

The serving layer may change *when* queries run, never what they
answer.  The fuzz test here drives the whole positional-predicate
pool through a :class:`~repro.serve.QueryServer` concurrently —
across executor ∈ {thread, process} × storage ∈ {memory, mmap} — and
demands byte-identical serializations to the serial reference.  The
rest pins the serving-specific machinery: heavy-lane admission
control, per-query timeouts (cancel tokens unwinding the shard
waits), the JSON-lines TCP protocol, per-session static contexts over
one shared plan cache, and the concurrent lazy-build paths the server
flushes out of the storage layer.

Everything runs on plain ``asyncio.run`` — no async test plugin.
"""

import asyncio
import json
import threading
import time

import pytest

from repro import storage
from repro.errors import ReproError, XQueryStaticError
from repro.serve import (
    QueryServer,
    QueryTimeout,
    estimate_pair_budget,
    serve,
)
from repro.xquery.engine import Database

from test_fuzz_differential import POSITIONAL_PREDICATES

WORKERS = 2

XML = "<doc>" + "".join(
    f"<s id='{i}' start='{i * 10}' end='{i * 10 + 9}'>"
    + "".join(f"<w start='{i * 10 + j}' end='{i * 10 + j}'>t{j}</w>"
              for j in range(5))
    + "</s>" for i in range(40)) + "</doc>"


def build(backend):
    db = Database(storage_backend=backend)
    db.add_document("d.xml", XML)
    return db


def workload():
    """One query per positional predicate plus a few serving-shaped
    extras (point lookup, standoff join, scan-over-scan)."""
    queries = [f"doc('d.xml')//s{pred}/w" for pred in
               POSITIONAL_PREDICATES]
    queries += [
        "doc('d.xml')//s[@id='7']/child::w",
        "count(doc('d.xml')//w)",
        "for $w in doc('d.xml')//w[@start < 40] "
        "return standoff:select-wide(doc('d.xml')//s, $w)",
        "for $s in doc('d.xml')//s[position() < 5] "
        "return count($s/following::w)",
    ]
    return queries


# ----------------------------------------------------------------------
# concurrency fuzz: concurrent == serial, across the executor matrix
# ----------------------------------------------------------------------

@pytest.mark.parametrize("executor,backend", [
    ("thread", "memory"),
    ("thread", "mmap"),
    ("process", "memory"),
    ("process", "mmap"),
])
def test_concurrent_equals_serial(executor, backend):
    db = build(backend)
    queries = workload()
    want = [db.query(q, strategy="ll", workers=WORKERS,
                     shard_min_rows=1, executor=executor).serialize()
            for q in queries]

    async def run():
        async with QueryServer(db=db, workers=WORKERS,
                               shard_min_rows=1, executor=executor,
                               max_concurrency=8,
                               default_timeout=0) as server:
            results = await asyncio.gather(
                *(server.query(q) for q in queries))
            assert server.stats["completed"] == len(queries)
            return [r.serialized for r in results]

    got = asyncio.run(run())
    for query, expect, actual in zip(queries, want, got):
        assert actual == expect, (executor, backend, query)


def test_interleaved_rounds_share_plan_cache():
    """Two concurrent rounds of the same workload: round two must be
    answered entirely from the compiled-plan cache."""
    db = build("memory")
    queries = workload()

    async def run():
        async with QueryServer(db=db, workers=WORKERS,
                               shard_min_rows=1,
                               default_timeout=0) as server:
            await asyncio.gather(*(server.query(q) for q in queries))
            before = db.plan_cache.stats()["misses"]
            await asyncio.gather(*(server.query(q) for q in queries))
            after = db.plan_cache.stats()["misses"]
            assert after == before

    asyncio.run(run())


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------

SLOW_SCAN = ("for $s in doc('d.xml')//s "
             "return count($s/following::w)")
POINT = "doc('d.xml')//s[@id='3']/child::w"


def test_classify_and_pair_budget():
    db = build("memory")
    module, _static = db.compile(SLOW_SCAN)
    nested = estimate_pair_budget(db, module)
    module, _static = db.compile(POINT)
    point = estimate_pair_budget(db, module)
    module, _static = db.compile("1 + 1")
    arithmetic = estimate_pair_budget(db, module)
    assert arithmetic == 0
    assert 0 < point < nested

    server = QueryServer(db=db, heavy_pairs=point + 1)
    assert server.classify(POINT) == "light"
    assert server.classify(SLOW_SCAN) == "heavy"
    assert server.classify("syntax ((( error") == "light"


def test_heavy_lane_never_starves_point_lookups():
    """With every heavy slot held by a blocked scan, a point lookup
    must still be admitted and answered."""
    db = build("memory")
    release = threading.Event()
    real_query = db.query

    def gated_query(text, **kwargs):
        if text == SLOW_SCAN:
            assert release.wait(timeout=30), "test deadlock"
        return real_query(text, **kwargs)

    db.query = gated_query

    async def run():
        async with QueryServer(db=db, max_concurrency=4,
                               heavy_slots=1, heavy_pairs=1000,
                               default_timeout=0) as server:
            assert server.classify(SLOW_SCAN) == "heavy"
            assert server.classify(POINT) == "light"
            heavies = [asyncio.ensure_future(server.query(SLOW_SCAN))
                       for _ in range(3)]
            while server._heavy_in_flight < 1:
                await asyncio.sleep(0.01)
            result = await asyncio.wait_for(server.query(POINT),
                                            timeout=30)
            assert result.lane == "light"
            assert not any(h.done() for h in heavies)
            release.set()
            await asyncio.gather(*heavies)
            assert server.stats["max_heavy_in_flight"] == 1
            assert server.stats["heavy"] == 3
            assert server.stats["light"] == 1

    asyncio.run(run())


# ----------------------------------------------------------------------
# timeouts and cancellation
# ----------------------------------------------------------------------

#: Forces per-node predicate evaluation — the interpreter loop path —
#: so the timeout has to propagate through the cancellation
#: checkpoints, not just the shard-future wait loops.
SLOW_NESTED = ("for $s in doc('d.xml')//s return "
               "count($s/following::w[count(./following::w) > 2])")


def slow_db():
    words = " ".join(f"<w>w{i}</w>" for i in range(300))
    xml = "<doc>" + "".join(
        f"<s id='{i}'>{words}</s>" for i in range(30)) + "</doc>"
    db = Database()
    db.add_document("d.xml", xml)
    return db


def test_timeout_cancels_slow_query():
    db = slow_db()

    async def run():
        async with QueryServer(db=db) as server:
            start = time.monotonic()
            with pytest.raises(QueryTimeout):
                await server.query(SLOW_NESTED, timeout=0.2)
            elapsed = time.monotonic() - start
            # generous bound: the point is that it does not run for
            # the many seconds the full evaluation takes
            assert elapsed < 10.0
            assert server.stats["timeouts"] == 1
            assert server.stats["completed"] == 0

    asyncio.run(run())


def test_timeout_zero_disables():
    db = build("memory")

    async def run():
        async with QueryServer(db=db, default_timeout=0) as server:
            result = await server.query("1 + 1")
            assert result.serialized == "2"
            assert server.stats["timeouts"] == 0

    asyncio.run(run())


def test_task_cancellation_reaps_query():
    """Cancelling the awaiting task must cancel the evaluation (the
    dispatch thread unwinds) and count it, not orphan it."""
    db = slow_db()

    async def run():
        async with QueryServer(db=db, default_timeout=0) as server:
            task = asyncio.ensure_future(server.query(SLOW_NESTED))
            while not server._in_flight:
                await asyncio.sleep(0.01)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert server.stats["cancelled"] == 1

    asyncio.run(run())


def test_engine_errors_surface():
    db = build("memory")

    async def run():
        async with QueryServer(db=db, default_timeout=0) as server:
            with pytest.raises(ReproError):
                await server.query("doc('missing.xml')//x")
            assert server.stats["errors"] == 1

    asyncio.run(run())


# ----------------------------------------------------------------------
# per-session static contexts over one shared plan cache
# ----------------------------------------------------------------------

SESSION_XML = """<a><x id="outer" b="0" e="100"/>
                    <y id="inner" b="10" e="20"/></a>"""
SESSION_QUERY = 'doc("s.xml")//x/select-narrow::y'
SESSION_OPTIONS = {"standoff-start": "b", "standoff-end": "e"}


def test_session_options_change_the_answer():
    db = Database()
    db.add_document("s.xml", SESSION_XML)
    # default static context: the b/e attributes are not recognized as
    # region bounds, so nothing qualifies
    assert db.query(SESSION_QUERY).serialize() == ""
    got = db.query(SESSION_QUERY,
                   session_options=SESSION_OPTIONS).serialize()
    assert 'id="inner"' in got
    # both plans live in the same cache under distinct fingerprints
    # (unless the cache is disabled for the run, REPRO_PLAN_CACHE=0)
    if db.plan_cache.enabled:
        assert db.plan_cache.stats()["entries"] >= 2
    for _ in range(2):
        assert db.query(SESSION_QUERY).serialize() == ""
        assert db.query(SESSION_QUERY,
                        session_options=SESSION_OPTIONS
                        ).serialize() == got


def test_prolog_wins_over_session_options():
    db = Database()
    db.add_document("s.xml", SESSION_XML)
    prolog = ('declare option standoff-start "b"\n'
              'declare option standoff-end "e"\n')
    got = db.query(prolog + SESSION_QUERY,
                   session_options={"standoff-start": "nope",
                                    "standoff-end": "nada"}).serialize()
    assert 'id="inner"' in got


def test_unknown_session_option_rejected():
    db = Database()
    db.add_document("s.xml", SESSION_XML)
    with pytest.raises(XQueryStaticError):
        db.query("1", session_options={"standoff-oops": "x"})


def test_database_level_session_options():
    db = Database(session_options=SESSION_OPTIONS)
    db.add_document("s.xml", SESSION_XML)
    assert 'id="inner"' in db.query(SESSION_QUERY).serialize()


def test_served_sessions_isolated():
    """Two sessions with different static contexts served by one
    QueryServer (one Database, one plan cache) get their own answers."""
    db = Database()
    db.add_document("s.xml", SESSION_XML)

    async def run():
        async with QueryServer(db=db, default_timeout=0) as server:
            plain, custom = await asyncio.gather(
                server.query(SESSION_QUERY),
                server.query(SESSION_QUERY,
                             session_options=SESSION_OPTIONS))
            assert plain.serialized == ""
            assert 'id="inner"' in custom.serialized

    asyncio.run(run())


# ----------------------------------------------------------------------
# the JSON-lines TCP protocol
# ----------------------------------------------------------------------

def test_tcp_protocol_roundtrip():
    db = build("memory")

    async def request(writer, reader, payload):
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        return json.loads(await reader.readline())

    async def run():
        server = QueryServer(db=db, default_timeout=0)
        tcp = await serve(server, port=0)
        try:
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)

            reply = await request(writer, reader, {"op": "ping", "id": 1})
            assert reply == {"id": 1, "ok": True, "pong": True}

            reply = await request(writer, reader, {
                "op": "query", "id": 2,
                "query": "count(doc('d.xml')//w)"})
            assert reply["ok"] and reply["id"] == 2
            assert reply["result"] == "200"
            assert reply["items"] == 1
            assert reply["lane"] in ("light", "heavy")
            assert reply["elapsed_ms"] >= 0

            reply = await request(writer, reader, {
                "op": "query", "id": 3, "query": "syntax ((("})
            assert not reply["ok"] and reply["code"] == "error"

            reply = await request(writer, reader, {
                "op": "query", "id": 4, "query": 17})
            assert not reply["ok"] and reply["code"] == "bad-request"

            reply = await request(writer, reader, {"op": "nope", "id": 5})
            assert not reply["ok"] and reply["code"] == "bad-request"

            writer.write(b"this is not json\n")
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert not reply["ok"] and reply["code"] == "bad-request"

            reply = await request(writer, reader, {
                "op": "query", "id": 6,
                "query": SESSION_QUERY.replace("s.xml", "d.xml"),
                "options": {"standoff-start": "start",
                            "standoff-end": "end"}})
            assert reply["ok"], reply

            reply = await request(writer, reader, {"op": "stats", "id": 7})
            assert reply["ok"]
            assert reply["stats"]["submitted"] >= 3

            writer.close()
            await writer.wait_closed()
        finally:
            tcp.close()
            await tcp.wait_closed()
            await server.stop()

    asyncio.run(run())


def test_tcp_responses_out_of_order():
    """A point lookup pipelined behind a gated scan must overtake it."""
    db = build("memory")
    release = threading.Event()
    real_query = db.query

    def gated_query(text, **kwargs):
        if text == SLOW_SCAN:
            assert release.wait(timeout=30), "test deadlock"
        return real_query(text, **kwargs)

    db.query = gated_query

    async def run():
        server = QueryServer(db=db, default_timeout=0)
        tcp = await serve(server, port=0)
        try:
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(
                json.dumps({"op": "query", "id": "slow",
                            "query": SLOW_SCAN}).encode() + b"\n"
                + json.dumps({"op": "query", "id": "fast",
                              "query": POINT}).encode() + b"\n")
            await writer.drain()
            first = json.loads(await reader.readline())
            assert first["id"] == "fast", first
            release.set()
            second = json.loads(await reader.readline())
            assert second["id"] == "slow", second
            writer.close()
            await writer.wait_closed()
        finally:
            release.set()
            tcp.close()
            await tcp.wait_closed()
            await server.stop()

    asyncio.run(run())


# ----------------------------------------------------------------------
# lifecycle regressions the server flushed out of the storage layer
# ----------------------------------------------------------------------

def test_concurrent_lazy_shred_build():
    """N threads racing the first ``shredded`` build must all see one
    finished shredding (renumber() mutates the DOM mid-build; the
    build lock makes that invisible)."""
    for backend in ("memory", "mmap"):
        db = build(backend)
        stored = db.document("d.xml")
        results = []
        barrier = threading.Barrier(8)

        def grab():
            barrier.wait()
            results.append(stored.shredded)

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(sh) for sh in results}) == 1, backend
        assert results[0].pre.size > 0


def test_concurrent_store_reader_facades(tmp_path):
    """Racing ``StoreReader.stored`` must yield one facade per URI —
    the engine's node-identity checks require one DOM instance per
    stored document."""
    path = str(tmp_path / "d.repro")
    storage.save_store(path, build("memory"))
    reader = storage.StoreReader(path)
    results = []
    barrier = threading.Barrier(8)

    def grab():
        barrier.wait()
        stored = reader.stored("d.xml")
        results.append((stored, stored.document))

    threads = [threading.Thread(target=grab) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len({id(s) for s, _doc in results}) == 1
    assert len({id(doc) for _s, doc in results}) == 1
