"""Property tests: serialize/parse round-trips on random DOM trees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmldb import Comment, Element, parse_document, serialize

tag_names = st.sampled_from(["a", "b", "item", "ns:c", "x-y", "_d"])
attr_names = st.sampled_from(["id", "start", "end", "v", "data-k"])
text_chunks = st.text(
    alphabet=st.characters(codec="utf-8", exclude_characters="\r"),
    min_size=1, max_size=20)


@st.composite
def elements(draw, depth=0):
    element = Element(draw(tag_names))
    for name in draw(st.lists(attr_names, max_size=3, unique=True)):
        element.set_attribute(name, draw(st.text(
            alphabet=st.characters(codec="utf-8",
                                   exclude_characters="\r"),
            max_size=15)))
    if depth < 3:
        for kind in draw(st.lists(
                st.sampled_from(["text", "element", "comment"]),
                max_size=4)):
            if kind == "text":
                element.append_text(draw(text_chunks))
            elif kind == "comment":
                body = draw(st.text(
                    alphabet="abcdef ", max_size=10))
                element.append(Comment(body))
            else:
                element.append(draw(elements(depth=depth + 1)))
    return element


def signature(element):
    """Structure + values, ignoring node identity."""
    return (
        element.tag,
        tuple((a.name, a.value) for a in element.attributes),
        tuple(
            signature(child) if isinstance(child, Element)
            else (type(child).__name__, child.string_value())
            for child in element.children),
    )


@given(elements())
@settings(max_examples=120, deadline=None)
def test_serialize_parse_roundtrip(element):
    text = serialize(element)
    reparsed = parse_document(text).root_element
    assert signature(reparsed) == signature(element)


@given(elements())
@settings(max_examples=60, deadline=None)
def test_indented_output_reparses_to_same_string_value(element):
    pretty = serialize(element, indent=True)
    reparsed = parse_document(pretty).root_element
    # indentation may add whitespace between element-only children, but
    # never inside mixed content, so non-space content is preserved
    assert "".join(reparsed.string_value().split()) == \
        "".join(element.string_value().split())


@given(elements())
@settings(max_examples=60, deadline=None)
def test_double_roundtrip_is_fixpoint(element):
    once = serialize(parse_document(serialize(element)).root_element)
    twice = serialize(parse_document(once).root_element)
    assert once == twice
