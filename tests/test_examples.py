"""Integration: every example script runs clean and prints what its
docstring promises."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=180)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run("quickstart.py")
    assert "-> Intro" in out
    assert "-> Intro, Interview" in out
    assert "-> Interview, Outro" in out
    assert "-> Outro" in out
    assert 'shots="2"' in out


def test_forensics():
    out = run("forensics.py")
    assert "offshore, invoice, account" in out
    assert "transfer" in out                    # unallocated-space hit
    assert "f-ledger.xls" in out
    assert 'fragments="2"' in out               # non-contiguous area


def test_nlp_corpus():
    out = run("nlp_corpus.py")
    assert 'entity="last June"' in out          # the straddler
    assert "tokens outside all entities" in out


def test_genomics():
    out = run("genomics.py")
    assert "exons inside genes: ['A1', 'A2', 'A3', 'B1', 'B2']" in out
    assert "['r4']" in out                      # intergenic read
    assert "['r7']" in out                      # intronic read
    assert "GC content" in out


def test_xmark_standoff():
    out = run("xmark_standoff.py", "0.05")
    assert "identical results" in out
    for qid in ("q1", "q2", "q6", "q7"):
        assert qid in out
