"""The id()-keyed fragment partitions in repro.xquery.standoff.

``_prepare`` keys fragment partitions on ``id(root)`` — the key must
stay an int because it travels through the kernel's fragment-id column.
Soundness rests on two properties (the PR 7 strong-ref scheme): every
entry pins its root object, and every lookup verifies ``entry[0] is
root`` before trusting the key.  CPython recycles addresses as soon as
an object dies, so these tests force the collision directly: ``id`` is
shadowed inside the module so two live roots report one address, which
is exactly what a stale entry at a recycled address looks like.
"""

import gc

import repro.xquery.standoff as standoff
from repro.core.steps import Strategy
from repro.xquery import Database
from repro.xquery.context import DynamicContext


def make_context(db: Database) -> DynamicContext:
    return DynamicContext(db.store, strategy=Strategy.LOOP_LIFTED)


def test_stale_candidate_at_recycled_address_is_dropped(monkeypatch):
    db = Database()
    ctx = make_context(db)
    context_nodes = list(db.query(
        "let $f := <w><c/></w> return $f/child::c"))
    candidate_nodes = list(db.query(
        "let $f := <w><c/><c/></w> return $f/child::c"))
    root_a = standoff._fragment_root(context_nodes[0])
    root_b = standoff._fragment_root(candidate_nodes[0])
    assert root_a is not root_b

    def fake_id(obj, _real=id):
        # Both roots report one address: the recycled-id scenario.
        if obj is root_a or obj is root_b:
            return 0xDEAD
        return _real(obj)

    # A module-level binding shadows the builtin for code in the module.
    monkeypatch.setattr(standoff, "id", fake_id, raising=False)
    context_by_fragment, candidates_by_fragment, iter_rows = \
        standoff._prepare(ctx, {0: context_nodes}, None, candidate_nodes)
    assert set(context_by_fragment) == {0xDEAD}
    info, pres = context_by_fragment[0xDEAD]
    assert info.root is root_a
    assert pres == [context_nodes[0].pre]
    assert iter_rows == [(0, 0xDEAD, context_nodes[0].pre)]
    # The candidates live in a different fragment whose root merely
    # shares the address — the identity check must reject every one.
    assert list(candidates_by_fragment[0xDEAD]) == []


def test_candidates_from_the_pinned_root_still_group(monkeypatch):
    """The identity check only rejects *impostors* — same-root
    candidates keep flowing through the explicit-candidate path."""
    db = Database()
    ctx = make_context(db)
    nodes = list(db.query(
        "let $f := <w><c/><c/></w> return $f/child::c"))
    root = standoff._fragment_root(nodes[0])

    def fake_id(obj, _real=id):
        return 0xBEEF if obj is root else _real(obj)

    monkeypatch.setattr(standoff, "id", fake_id, raising=False)
    _context, candidates_by_fragment, _rows = standoff._prepare(
        ctx, {0: [nodes[0]]}, None, nodes)
    assert list(candidates_by_fragment[0xBEEF]) == \
        sorted(node.pre for node in nodes)


def test_partition_entries_pin_fragment_roots():
    db = Database()
    ctx = make_context(db)
    nodes = list(db.query("let $f := <w><c/></w> return $f/child::c"))
    root = standoff._fragment_root(nodes[0])
    key = id(root)
    context_by_fragment, _candidates, _rows = standoff._prepare(
        ctx, {0: nodes}, None, None)
    info, _pres = context_by_fragment[key]
    del root, nodes
    gc.collect()
    # The partition holds a strong reference, so the keyed address
    # cannot be recycled while the partition is alive — and the root
    # is still resolvable through it.
    assert info.root.tag == "w"
    assert info.node_by_pre(info.root.pre) is info.root


def test_repeated_constructed_fragments_resolve_to_live_nodes():
    """End-to-end churn: each round constructs a content-equal fragment,
    the previous one dies, and CPython happily hands out the freed
    addresses again.  Every round must resolve to that round's nodes."""
    db = Database()
    query = ("let $f := <w><c start='0' end='10'/>"
             "<t start='2' end='3'/></w> "
             "return $f/child::c/select-narrow::t")
    for _ in range(20):
        nodes = list(db.query(query))
        assert len(nodes) == 1
        assert nodes[0].tag == "t"
        del nodes
        gc.collect()
