"""Cross-fragment querying: the global region index (paper §3.3 (ii))."""

import pytest

from repro.core import RegionIndex, StandoffOp
from repro.core.global_index import GlobalRegionIndex, global_standoff_join
from repro.errors import XQueryDynamicError
from repro.xquery import Database

SHOTS = ('<layer kind="shots">'
         '<shot id="Intro" start="0" end="8"/>'
         '<shot id="Interview" start="8" end="64"/>'
         '<shot id="Outro" start="64" end="94"/></layer>')
MUSIC = ('<layer kind="music">'
         '<music artist="U2" start="0" end="31"/>'
         '<music artist="Bach" start="52" end="94"/></layer>')


@pytest.fixture
def db():
    database = Database()
    database.add_document("shots.xml", SHOTS)
    database.add_document("music.xml", MUSIC)
    return database


class TestGlobalRegionIndex:
    def test_merges_fragments(self):
        frag1 = RegionIndex.build([(1, 0, 10), (2, 5, 8)])
        frag2 = RegionIndex.build([(1, 3, 7)])
        gidx = GlobalRegionIndex({10: frag1, 20: frag2})
        assert len(gidx) == 3
        assert gidx.fragment_count() == 2

    def test_composite_ids_roundtrip(self):
        frag1 = RegionIndex.build([(1, 0, 10)])
        frag2 = RegionIndex.build([(1, 3, 7)])
        gidx = GlobalRegionIndex({10: frag1, 20: frag2})
        c1 = gidx.composite_id(10, 1)
        c2 = gidx.composite_id(20, 1)
        assert c1 != c2
        assert gidx.pair_of(c1) == (10, 1)
        assert gidx.pair_of(c2) == (20, 1)
        assert gidx.composite_id(30, 1) is None

    def test_multi_region_area_keeps_one_composite(self):
        frag = RegionIndex.build([(7, 0, 10), (7, 20, 30)])
        gidx = GlobalRegionIndex({1: frag})
        assert len(gidx) == 2
        assert gidx.composite_id(1, 7) is not None
        # ∀-containment over the multi-region area still works globally
        ctx = RegionIndex.build([(99, 0, 100)])
        result = global_standoff_join(
            StandoffOp.SELECT_NARROW, [(0, 2, 99)], gidx,
            {1: frag, 2: ctx})
        assert result == {0: [(1, 7)]}

    def test_restrict(self):
        frag1 = RegionIndex.build([(1, 0, 10), (2, 5, 8)])
        gidx = GlobalRegionIndex({10: frag1})
        table = gidx.restrict([(10, 2)])
        assert len(table) == 1


class TestGlobalJoin:
    def test_cross_fragment_matches(self):
        shots = RegionIndex.build([(1, 0, 8), (2, 8, 64), (3, 64, 94)])
        music = RegionIndex.build([(1, 0, 31)])
        gidx = GlobalRegionIndex({1: shots, 2: music})
        result = global_standoff_join(
            StandoffOp.SELECT_WIDE, [(0, 2, 1)], gidx,
            {1: shots, 2: music})
        # U2 overlaps Intro and Interview across fragments, and itself.
        assert result == {0: [(1, 1), (1, 2), (2, 1)]}

    def test_reject_across_fragments(self):
        shots = RegionIndex.build([(1, 0, 8), (3, 64, 94)])
        music = RegionIndex.build([(1, 0, 31)])
        gidx = GlobalRegionIndex({1: shots, 2: music})
        result = global_standoff_join(
            StandoffOp.REJECT_WIDE, [(0, 2, 1)], gidx,
            {1: shots, 2: music})
        assert result == {0: [(1, 3)]}


class TestGlobalBuiltins:
    def test_axis_step_stays_in_fragment(self, db):
        assert db.query(
            'doc("music.xml")//music/select-wide::shot') == []

    def test_global_function_crosses_fragments(self, db):
        result = db.query(
            'select-wide-global(doc("music.xml")//music[@artist="U2"])')
        labels = [n.get_attribute("id") or n.get_attribute("artist")
                  for n in result]
        assert labels == ["Intro", "Interview", "U2"]

    def test_global_reject(self, db):
        result = db.query(
            'reject-wide-global(doc("music.xml")//music[@artist="U2"])'
            '/self::shot')
        assert [n.get_attribute("id") for n in result] == ["Outro"]

    def test_collection_function(self, db):
        assert db.query("count(collection())") == [2]
        assert db.query("count(collection()//shot)") == [3]

    def test_global_on_constructed_fragment_rejected(self, db):
        with pytest.raises(XQueryDynamicError):
            db.query('select-wide-global(<x start="1" end="2"/>)')

    def test_index_invalidated_on_store_change(self, db):
        before = db.store.global_region_index()
        assert db.store.global_region_index() is before   # cached
        db.add_document("more.xml",
                        '<layer><speech start="10" end="20"/></layer>')
        after = db.store.global_region_index()
        assert after is not before
        assert len(after) == len(before) + 1
        result = db.query(
            'select-wide-global(doc("music.xml")//music[@artist="U2"])'
            '/self::speech')
        assert len(result) == 1
