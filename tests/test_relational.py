"""Tests for the relational substrate: tables, operators, IterSeq."""

import numpy as np
import pytest

from repro.errors import RelationalError
from repro.relational import (
    Column,
    IterSeq,
    Table,
    antijoin,
    cross,
    distinct,
    equi_join,
    expand_loop,
    group_count,
    row_number,
    select,
    select_eq,
    semijoin,
    sort,
    unlift,
)


def sample_table():
    return Table.from_dict({
        "iter": np.asarray([1, 1, 2, 2], dtype=np.int64),
        "pos": np.asarray([1, 2, 1, 2], dtype=np.int64),
        "item": ["twenty", "one", "twenty", "two"],
    })


class TestTable:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(RelationalError):
            Table([Column.int64("a", [1, 2]), Column.int64("b", [1])])

    def test_duplicate_names_rejected(self):
        with pytest.raises(RelationalError):
            Table([Column.int64("a", [1]), Column.int64("a", [2])])

    def test_col_lookup(self):
        t = sample_table()
        assert t.col("item")[1] == "one"
        with pytest.raises(RelationalError):
            t.col("missing")

    def test_project_and_rename(self):
        t = sample_table().project("iter", "item")
        assert t.column_names == ["iter", "item"]
        t2 = t.rename({"item": "value"})
        assert t2.column_names == ["iter", "value"]

    def test_concat_schema_checked(self):
        t = sample_table()
        with pytest.raises(RelationalError):
            t.concat(t.project("iter", "pos"))
        both = t.concat(t)
        assert len(both) == 8

    def test_pretty_contains_header(self):
        text = sample_table().pretty()
        assert "iter" in text and "twenty" in text


class TestOperators:
    def test_select_eq(self):
        t = select_eq(sample_table(), "iter", 2)
        assert t.col("item").to_list() == ["twenty", "two"]

    def test_select_predicate(self):
        t = select(sample_table(), lambda row: row[2].startswith("t"))
        assert len(t) == 3

    def test_sort_stable(self):
        t = Table.from_dict({
            "k": np.asarray([2, 1, 2, 1], dtype=np.int64),
            "v": ["a", "b", "c", "d"],
        })
        s = sort(t, "k")
        assert s.col("v").to_list() == ["b", "d", "a", "c"]

    def test_sort_item_column_rejected(self):
        with pytest.raises(RelationalError):
            sort(sample_table(), "item")

    def test_equi_join_order_preserving(self):
        left = Table.from_dict({
            "iter": np.asarray([2, 1], dtype=np.int64),
            "x": ["b", "a"]})
        right = Table.from_dict({
            "iter": np.asarray([1, 2, 2], dtype=np.int64),
            "y": ["p", "q", "r"]})
        joined = equi_join(left, right, "iter")
        assert joined.col("x").to_list() == ["b", "b", "a"]
        assert joined.col("y").to_list() == ["q", "r", "p"]

    def test_equi_join_name_clash_suffixed(self):
        left = Table.from_dict({"k": np.asarray([1], dtype=np.int64),
                                "v": ["l"]})
        right = Table.from_dict({"k": np.asarray([1], dtype=np.int64),
                                 "v": ["r"]})
        joined = equi_join(left, right, "k")
        assert joined.col("v").to_list() == ["l"]
        assert joined.col("v_r").to_list() == ["r"]

    def test_semijoin_antijoin(self):
        left = sample_table()
        right = Table.from_dict({"iter": np.asarray([2], dtype=np.int64)})
        assert len(semijoin(left, right, "iter")) == 2
        assert len(antijoin(left, right, "iter")) == 2

    def test_cross(self):
        left = Table.from_dict({"a": np.asarray([1, 2], dtype=np.int64)})
        right = Table.from_dict({"b": np.asarray([10, 20], dtype=np.int64)})
        c = cross(left, right)
        assert c.col("a").to_list() == [1, 1, 2, 2]
        assert c.col("b").to_list() == [10, 20, 10, 20]

    def test_group_count(self):
        g = group_count(sample_table(), "iter")
        assert g.col("iter").to_list() == [1, 2]
        assert g.col("count").to_list() == [2, 2]

    def test_row_number(self):
        t = Table.from_dict({"k": np.asarray([1, 1, 2, 1], dtype=np.int64)})
        n = row_number(t, "k")
        assert n.col("pos").to_list() == [1, 2, 1, 3]

    def test_distinct(self):
        t = Table.from_dict({
            "a": np.asarray([1, 1, 2], dtype=np.int64),
            "b": np.asarray([1, 1, 1], dtype=np.int64)})
        assert len(distinct(t, "a", "b")) == 2


class TestIterSeq:
    def test_lifted_constant(self):
        seq = IterSeq.lifted(["x"], [1, 2, 3])
        assert seq.items_for(2) == ["x"]
        assert seq.total_items() == 3

    def test_missing_iter_is_empty(self):
        seq = IterSeq.single(["x"], iteration=5)
        assert seq.items_for(1) == []

    def test_concat_per_iter(self):
        a = IterSeq({1: ["a1"], 2: ["a2"]})
        b = IterSeq({1: ["b1"]})
        c = a.concat(b)
        assert c.items_for(1) == ["a1", "b1"]
        assert c.items_for(2) == ["a2"]

    def test_to_table_iter_pos_item(self):
        seq = IterSeq({2: ["x", "y"], 1: ["z"]})
        t = seq.to_table()
        assert t.col("iter").to_list() == [1, 2, 2]
        assert t.col("pos").to_list() == [1, 1, 2]
        assert t.col("item").to_list() == ["z", "x", "y"]

    def test_equality_ignores_empty_iters(self):
        assert IterSeq({1: ["a"], 2: []}) == IterSeq({1: ["a"]})

    def test_paper_section41_example(self):
        """The $x/$y/$z loop-lifting example of §4.1."""
        outer_loop = [0]
        x_binding = IterSeq.single(["twenty", "thirty"])
        loop_x, outer_x, x_var, _ = expand_loop(x_binding, outer_loop)
        assert loop_x == [0, 1]

        y_binding = IterSeq.lifted(["one", "two"], loop_x)
        loop_y, outer_y, y_var, _ = expand_loop(y_binding, loop_x)
        assert loop_y == [0, 1, 2, 3]
        # $x relifted into the inner loop: "twenty" in iters 1-2 (paper
        # numbers iterations from 1; ours from 0).
        x_inner = x_var.relift(outer_y)
        assert [x_inner.items_for(q)[0] for q in loop_y] == [
            "twenty", "twenty", "thirty", "thirty"]
        assert [y_var.items_for(q)[0] for q in loop_y] == [
            "one", "two", "one", "two"]

        z = x_inner.concat(y_var)
        assert z.items_for(0) == ["twenty", "one"]
        assert z.items_for(3) == ["thirty", "two"]

        # return $z: unlift the body result through both loops
        result = unlift(unlift(z, outer_y), outer_x)
        assert result.items_for(0) == [
            "twenty", "one", "twenty", "two",
            "thirty", "one", "thirty", "two"]

    def test_expand_loop_positional(self):
        binding = IterSeq({7: ["a", "b"]})
        _loop, _outer, _var, pos = expand_loop(binding, [7])
        assert pos.items_for(0) == [1]
        assert pos.items_for(1) == [2]
