"""Update support: insert/delete with index maintenance (§3.3 (ii))."""

import pytest

from repro import Database
from repro.errors import XQueryTypeError

DOC = """
<video>
  <music artist="U2" start="0" end="31"/>
  <shot id="Intro" start="0" end="8"/>
</video>
"""


@pytest.fixture
def db():
    database = Database()
    database.add_document("v.xml", DOC)
    return database


class TestInsert:
    def test_inserted_annotation_joins(self, db):
        db.insert_nodes("v.xml", 'doc("v.xml")/video',
                        '<shot id="Teaser" start="9" end="20"/>')
        result = db.query(
            'doc("v.xml")//music/select-narrow::shot')
        assert [n.get_attribute("id") for n in result] == \
            ["Intro", "Teaser"]

    def test_insert_under_multiple_parents(self, db):
        count = db.insert_nodes("v.xml", 'doc("v.xml")//shot',
                                "<frame/>")
        assert count == 1
        assert db.query('count(doc("v.xml")//frame)') == [1]

    def test_insert_fragment_with_multiple_roots(self, db):
        db.insert_nodes("v.xml", 'doc("v.xml")/video',
                        '<a start="1" end="2"/><b start="3" end="4"/>')
        assert db.query('count(doc("v.xml")/video/*)') == [4]

    def test_shredded_columns_rebuilt(self, db):
        before = db.document("v.xml").shredded
        db.insert_nodes("v.xml", 'doc("v.xml")/video', "<x/>")
        after = db.document("v.xml").shredded
        assert after is not before
        assert len(after.elements_named("x")) == 1

    def test_global_index_invalidated(self, db):
        before = db.store.global_region_index()
        db.insert_nodes("v.xml", 'doc("v.xml")/video',
                        '<shot id="New" start="40" end="50"/>')
        after = db.store.global_region_index()
        assert after is not before
        assert len(after) == len(before) + 1

    def test_insert_rejects_foreign_parent(self, db):
        db.add_document("other.xml", "<o/>")
        with pytest.raises(XQueryTypeError):
            db.insert_nodes("v.xml", 'doc("other.xml")/o', "<x/>")

    def test_insert_rejects_attribute_parent(self, db):
        with pytest.raises(XQueryTypeError):
            db.insert_nodes("v.xml", 'doc("v.xml")//shot/@id', "<x/>")

    def test_no_parents_no_invalidation(self, db):
        version = db.store.version
        count = db.insert_nodes("v.xml", 'doc("v.xml")//nothing',
                                "<x/>")
        assert count == 0
        assert db.store.version == version


class TestDelete:
    def test_deleted_annotation_gone_from_joins(self, db):
        deleted = db.delete_nodes("v.xml", 'doc("v.xml")//shot')
        assert deleted == 1
        assert db.query(
            'doc("v.xml")//music/select-narrow::shot') == []

    def test_delete_attribute(self, db):
        db.delete_nodes("v.xml", 'doc("v.xml")//shot/@id')
        assert db.query('doc("v.xml")//shot/@id') == []

    def test_delete_rejects_document_node(self, db):
        with pytest.raises(XQueryTypeError):
            db.delete_nodes("v.xml", 'doc("v.xml")')

    def test_delete_region_updates_index(self, db):
        # Remove the music annotation: the join context disappears.
        db.delete_nodes("v.xml", 'doc("v.xml")//music')
        assert db.query(
            'doc("v.xml")//music/select-narrow::shot') == []
        index = db.document("v.xml").region_index()
        assert len(index) == 1      # only the shot remains

    def test_counts_after_roundtrip(self, db):
        db.insert_nodes("v.xml", 'doc("v.xml")/video',
                        '<shot id="X" start="70" end="80"/>')
        assert db.query('count(doc("v.xml")//shot)') == [2]
        db.delete_nodes("v.xml", 'doc("v.xml")//shot[@id="X"]')
        assert db.query('count(doc("v.xml")//shot)') == [1]
