"""Tests for BLOB storage and the extension builtins."""

import pytest

from repro.core import Area, Region
from repro.errors import (
    RegionError,
    ReproError,
    XQueryDynamicError,
    XQueryTypeError,
)
from repro.xmldb.blob import Blob, BlobStore
from repro.xquery import Database

TEXT = "The quick brown fox jumps over the lazy dog"
#       0123456789...


class TestBlob:
    def test_slice_inclusive(self):
        blob = Blob("t", TEXT)
        assert blob.slice(Region(4, 8)) == "quick"

    def test_slice_out_of_range(self):
        blob = Blob("t", TEXT)
        with pytest.raises(RegionError):
            blob.slice(Region(0, len(TEXT)))
        with pytest.raises(RegionError):
            blob.slice(Region(-1, 3))

    def test_extract_multi_region(self):
        blob = Blob("t", TEXT)
        area = Area([Region(4, 8), Region(16, 18)])
        assert blob.extract(area) == "quickfox"
        assert blob.extract(area, separator="...") == "quick...fox"

    def test_binary_blob(self):
        blob = Blob("bin", bytes(range(256)))
        assert blob.slice(Region(10, 12)) == bytes([10, 11, 12])
        assert blob.is_binary

    def test_covered_fraction(self):
        blob = Blob("t", "0123456789")
        areas = [Area.of(0, 4), Area.of(3, 4)]   # overlap merged
        assert blob.covered_fraction(iter(areas)) == 0.5
        assert blob.covered_fraction(iter([])) == 0.0


class TestBlobStore:
    def test_add_get_remove(self):
        store = BlobStore()
        store.add("a", "xyz")
        assert "a" in store
        assert store.get("a").content == "xyz"
        store.remove("a")
        assert "a" not in store

    def test_duplicate_rejected(self):
        store = BlobStore()
        store.add("a", "x")
        with pytest.raises(ReproError):
            store.add("a", "y")

    def test_missing_raises(self):
        store = BlobStore()
        with pytest.raises(ReproError):
            store.get("missing")
        with pytest.raises(ReproError):
            store.remove("missing")


@pytest.fixture
def db():
    database = Database()
    database.add_blob("text.txt", TEXT)
    database.add_document("ann.xml", """
        <d>
          <w id="quick" start="4" end="8"/>
          <w id="fox"   start="16" end="18"/>
          <phrase id="qbf" start="4" end="18"/>
        </d>""")
    return database


class TestBlobBuiltins:
    def test_blob_content(self, db):
        result = db.query(
            'blob-content("text.txt", (doc("ann.xml")//w)[1])')
        assert result == ["quick"]

    def test_blob_content_in_flwor(self, db):
        result = db.query('for $w in doc("ann.xml")//w '
                          'return blob-content("text.txt", $w)')
        assert result == ["quick", "fox"]

    def test_blob_content_multi_region(self):
        database = Database()
        database.add_blob("b", TEXT)
        database.add_document("a.xml", """
            <d><pick id="p">
              <region><start>4</start><end>8</end></region>
              <region><start>16</start><end>18</end></region>
            </pick></d>""")
        result = database.query(
            'declare option standoff-region "region"\n'
            'blob-content("b", doc("a.xml")//pick)')
        assert result == ["quickfox"]

    def test_blob_substring(self, db):
        assert db.query('blob-substring("text.txt", 0, 2)') == ["The"]

    def test_blob_length(self, db):
        assert db.query('blob-length("text.txt")') == [len(TEXT)]

    def test_content_of_unannotated_node_raises(self, db):
        with pytest.raises(XQueryDynamicError):
            db.query('blob-content("text.txt", doc("ann.xml")/d)')

    def test_missing_blob_raises(self, db):
        with pytest.raises(ReproError):
            db.query('blob-content("nope", (doc("ann.xml")//w)[1])')


class TestRegionPredicateBuiltins:
    def test_region_relation(self, db):
        assert db.query(
            'region-relation((doc("ann.xml")//w)[1], '
            '(doc("ann.xml")//w)[2])') == ["before"]
        assert db.query(
            'region-relation(doc("ann.xml")//phrase, '
            '(doc("ann.xml")//w)[1])') == ["started-by"]

    def test_standoff_contains(self, db):
        assert db.query(
            'standoff-contains(doc("ann.xml")//phrase, '
            '(doc("ann.xml")//w)[2])') == [True]
        assert db.query(
            'standoff-contains((doc("ann.xml")//w)[2], '
            'doc("ann.xml")//phrase)') == [False]

    def test_standoff_overlaps(self, db):
        assert db.query(
            'standoff-overlaps(doc("ann.xml")//phrase, '
            '(doc("ann.xml")//w)[1])') == [True]
        assert db.query(
            'standoff-overlaps((doc("ann.xml")//w)[1], '
            '(doc("ann.xml")//w)[2])') == [False]

    def test_predicate_in_where_clause(self, db):
        result = db.query("""
            for $w in doc("ann.xml")//w
            where standoff-contains(doc("ann.xml")//phrase, $w)
            return $w/@id
        """)
        assert result.atomized() == ["quick", "fox"]

    def test_regions_function(self, db):
        assert db.query('regions((doc("ann.xml")//w)[1])') == [4, 8]

    def test_requires_single_node(self, db):
        with pytest.raises(XQueryTypeError):
            db.query('regions(doc("ann.xml")//w)')
