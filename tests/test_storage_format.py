"""The on-disk columnar store: round-trips, validation, dtype pinning.

Three concerns share this module:

* **round-trip fidelity** — ``save_store`` / ``open_store`` must hand
  back a database that answers every query exactly like the in-memory
  original, off zero-copy mapped columns;
* **format validation** — a corrupt header, truncated file, wrong
  magic, or unsupported version must raise the dedicated
  :class:`repro.errors.StorageFormatError` (never a cryptic NumPy or
  JSON error), and blob corruption must be caught by ``verify()``;
* **column invariants** — explicit little-endian dtypes (the on-disk
  format must not inherit platform defaults) and read-only columns
  (mapped pages are shared across processes; nothing may write them).
"""

import os

import numpy as np
import pytest

from repro import storage
from repro.core.region_index import RegionIndex, RegionTable
from repro.errors import StorageFormatError
from repro.storage.format import MAGIC, StoreFile
from repro.xmldb.parser import parse_document
from repro.xmldb.shred import shred
from repro.xquery.engine import Database

DOC_A = """<video><music artist="U2" start="10" end="99">\
<shot start="12" end="20">intro</shot>\
<shot start="40" end="55"/></music>\
<!-- annotated stream --><music artist="Moby" start="120" end="180"/>\
</video>"""

DOC_B = """<r>
  <a i="1">text <b>nested</b> tail</a>
  <?pi data?>
  <a i="2"/>
</r>"""

QUERIES = (
    'count(doc("a.xml")//shot)',
    'doc("a.xml")//music[@artist="U2"]/select-wide::shot',
    'for $m in doc("a.xml")//music return count($m/reject-narrow::shot)',
    'doc("b.xml")//a[@i="1"]/descendant-or-self::node()',
    'doc("b.xml")/r/child::node()/following-sibling::a',
)


def build_db():
    db = Database()
    db.add_document("a.xml", DOC_A)
    db.add_document("b.xml", DOC_B)
    return db


@pytest.fixture()
def store_path(tmp_path):
    path = str(tmp_path / "docs.repro")
    storage.save_store(path, build_db())
    return path


# ----------------------------------------------------------------------
# round-trip
# ----------------------------------------------------------------------

class TestRoundTrip:
    def test_queries_identical_after_reopen(self, store_path):
        original = build_db()
        reopened = storage.open_store(store_path)
        for query in QUERIES:
            want = original.query(query, strategy="basic").serialize()
            assert reopened.query(query,
                                  strategy="basic").serialize() == want
            assert reopened.query(query, strategy="ll",
                                  workers=4,
                                  shard_min_rows=1).serialize() == want

    def test_columns_identical_after_reopen(self, store_path):
        original = build_db()
        reader = storage.StoreReader(store_path)
        for uri in ("a.xml", "b.xml"):
            mine = original.store.get(uri).shredded
            mapped = reader.shredded(uri)
            for col in ("pre", "size", "level", "kind", "parent",
                        "name"):
                assert np.array_equal(getattr(mine, col),
                                      getattr(mapped, col)), (uri, col)
            assert list(mine.names) == list(mapped.names)
            for pre in mine.pre.tolist():
                assert mine.value_of(pre) == mapped.value_of(pre)

    def test_region_table_identical_after_reopen(self, store_path):
        original = build_db()
        reader = storage.StoreReader(store_path)
        mine = original.store.get("a.xml").region_index().table
        mapped = reader.region_index("a.xml").table
        assert np.array_equal(mine.starts, mapped.starts)
        assert np.array_equal(mine.ends, mapped.ends)
        assert np.array_equal(mine.ids, mapped.ids)

    def test_open_is_lazy(self, store_path):
        """Opening must not parse, shred, or touch column pages."""
        db = storage.open_store(store_path)
        for stored in db.store:
            assert stored._document is None
            assert stored._shredded is None

    def test_verify_passes_on_clean_store(self, store_path):
        storage.StoreReader(store_path).verify()

    def test_save_store_path_returned(self, tmp_path):
        path = str(tmp_path / "out.repro")
        assert storage.save_store(path, build_db()) == path

    def test_whitespace_document_round_trips(self, tmp_path):
        """DOC_B has whitespace-only text nodes; the stored reparse
        flag must reproduce the exact original numbering."""
        path = str(tmp_path / "ws.repro")
        db = Database()
        db.add_document("b.xml", DOC_B)
        storage.save_store(path, db)
        reader = storage.StoreReader(path)
        want = db.store.get("b.xml").shredded
        got = shred(reader.document("b.xml"))
        assert np.array_equal(want.kind, got.kind)
        assert np.array_equal(want.pre, got.pre)


# ----------------------------------------------------------------------
# validation errors
# ----------------------------------------------------------------------

def _flip(path: str, offset: int, value: bytes) -> None:
    with open(path, "r+b") as fh:
        fh.seek(offset)
        fh.write(value)


class TestValidation:
    def test_bad_magic(self, store_path):
        _flip(store_path, 0, b"NOTASTOR")
        with pytest.raises(StorageFormatError, match="magic"):
            StoreFile(store_path)

    def test_version_mismatch(self, store_path):
        _flip(store_path, len(MAGIC), (99).to_bytes(4, "little"))
        with pytest.raises(StorageFormatError, match="version 99"):
            StoreFile(store_path)

    def test_corrupt_header_json(self, store_path):
        _flip(store_path, len(MAGIC) + 12, b"\xff\xff\xff")
        with pytest.raises(StorageFormatError, match="header"):
            StoreFile(store_path)

    def test_truncated_prefix(self, store_path):
        with open(store_path, "r+b") as fh:
            fh.truncate(10)
        with pytest.raises(StorageFormatError, match="truncated"):
            StoreFile(store_path)

    def test_truncated_blobs(self, store_path):
        size = os.path.getsize(store_path)
        with open(store_path, "r+b") as fh:
            fh.truncate(size - 64)
        with pytest.raises(StorageFormatError, match="truncated"):
            StoreFile(store_path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageFormatError, match="cannot open"):
            StoreFile(str(tmp_path / "nope.repro"))

    def test_missing_document(self, store_path):
        reader = storage.StoreReader(store_path)
        with pytest.raises(StorageFormatError, match="no document"):
            reader.shredded("missing.xml")

    def test_corrupt_blob_caught_by_verify(self, store_path):
        """Blob corruption is invisible to the O(1) open but must fail
        the explicit checksum pass."""
        file = StoreFile(store_path)
        entry = file.header["blobs"]["d0/pre"]
        del file  # release the mapping before rewriting
        _flip(store_path, entry["offset"], b"\x7f")
        reader = storage.StoreReader(store_path)  # opens fine
        with pytest.raises(StorageFormatError, match="checksum"):
            reader.verify()


# ----------------------------------------------------------------------
# column invariants
# ----------------------------------------------------------------------

SHRED_COLUMNS = ("pre", "size", "level", "kind", "parent", "name")


class TestColumnInvariants:
    def test_region_table_dtypes_are_explicit_little_endian(self):
        """RegionTable must pin '<i8' (and '<f8' for xs:double
        positions) no matter what dtype the inputs arrive in — the
        on-disk format inherits these dtypes."""
        table = RegionTable(np.array([1, 5], dtype=np.int32),
                            np.array([4, 9], dtype=np.uint16),
                            np.array([2, 3], dtype=np.int64))
        assert table.starts.dtype.str == "<i8"
        assert table.ends.dtype.str == "<i8"
        assert table.ids.dtype.str == "<i8"
        doubles = RegionTable(np.array([1.5, 5.0], dtype=np.float32),
                              np.array([4.0, 9.5]),
                              np.array([2, 3]))
        assert doubles.starts.dtype.str == "<f8"
        assert doubles.ends.dtype.str == "<f8"

    def test_region_index_build_dtypes(self):
        index = RegionIndex.build([(1, 10, 20), (2, 12, 15)])
        assert index.table.starts.dtype.str == "<i8"
        assert index.table.ids.dtype.str == "<i8"

    def test_in_memory_columns_read_only(self):
        sh = shred(parse_document(DOC_A, uri="a.xml"))
        for col in SHRED_COLUMNS:
            assert not getattr(sh, col).flags.writeable, col
        index = RegionIndex.build([(1, 10, 20), (2, 12, 15)])
        for col in ("starts", "ends", "ids"):
            assert not getattr(index.table, col).flags.writeable, col

    def test_mapped_columns_read_only(self, store_path):
        reader = storage.StoreReader(store_path)
        sh = reader.shredded("a.xml")
        for col in SHRED_COLUMNS:
            assert not getattr(sh, col).flags.writeable, col
        table = reader.region_index("a.xml").table
        for col in ("starts", "ends", "ids"):
            assert not getattr(table, col).flags.writeable, col

    def test_derived_pools_read_only(self):
        sh = shred(parse_document(DOC_A, uri="a.xml"))
        assert not sh.non_attribute_pres().flags.writeable
        assert not sh.pres_of_kind(3).flags.writeable

    def test_mutation_raises(self):
        sh = shred(parse_document(DOC_A, uri="a.xml"))
        with pytest.raises(ValueError):
            sh.pre[0] = 99


# ----------------------------------------------------------------------
# the mmap spill backend
# ----------------------------------------------------------------------

class TestSpillBackend:
    def test_spilled_columns_match_memory(self):
        mem = Database(storage_backend="memory")
        mm = Database(storage_backend="mmap")
        for db in (mem, mm):
            db.add_document("a.xml", DOC_A)
        a, b = mem.store.get("a.xml").shredded, \
            mm.store.get("a.xml").shredded
        assert b.store_ref is not None
        for col in SHRED_COLUMNS:
            assert np.array_equal(getattr(a, col), getattr(b, col))

    def test_spill_queries_identical(self):
        mem = Database(storage_backend="memory")
        mm = Database(storage_backend="mmap")
        for db in (mem, mm):
            db.add_document("a.xml", DOC_A)
            db.add_document("b.xml", DOC_B)
        for query in QUERIES:
            assert mm.query(query).serialize() == \
                mem.query(query).serialize(), query

    def test_store_stats_reports_backend(self):
        mm = Database(storage_backend="mmap")
        mm.add_document("a.xml", DOC_A)
        mm.store.get("a.xml").shredded  # trigger the spill
        (row,) = storage.store_stats(mm)
        assert row["backend"] == "mmap"
        assert row["file_size"] and row["file_size"] > 0

    def test_update_detaches_from_spill(self):
        mm = Database(storage_backend="mmap")
        mm.add_document("a.xml", DOC_A)
        assert mm.query('count(doc("a.xml")//shot)').serialize() == "2"
        mm.insert_nodes("a.xml", 'doc("a.xml")//music[@artist="Moby"]',
                        '<shot start="60" end="70"/>')
        assert mm.query('count(doc("a.xml")//shot)').serialize() == "3"
