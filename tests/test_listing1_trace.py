"""The execution trace of Figure 4 / Listing 1 (§4.5), step by step.

The paper traces loop-lifted select-narrow over::

    context  (iter, id, start, end)        candidates (start, end, id)
    1  c1  0  15                            r1   5 10
    2  c2 12  35                            r2  22 45
    1  c3 20  30                            r3  40 60
    1  c4 55  80                            r4  65 70

producing results (iter1, r1) and (iter1, r4).

**Erratum.** Listing 1's printed skip condition (line 14:
``tmp.end <= context[i].end``) would skip any context item whose
same-iteration active item ends before the *current* item — c3 ([20,30],
iter 1) is skipped in the paper's trace although c1 ([0,15], iter 1)
does *not* contain it.  In general that loses results: a candidate
inside [20,30] would never be reported for iteration 1.  (Figure 4's
candidate set happens to contain no such region, so the printed trace
still yields the correct output.)  Our implementation skips only items
truly contained in their iteration's active item and otherwise
*replaces* it — which is safe because a non-contained same-iteration
item always ends later.  The trace below therefore shows
``replace-active c1 -> c3`` where the paper shows "skip c3"; all
emissions agree.
"""

from repro.core import IterContext, RegionTable, StandoffOp, ll_join
from repro.core.mergejoin_ll import ll_select_narrow

C1, C2, C3, C4 = 101, 102, 103, 104
R1, R2, R3, R4 = 201, 202, 203, 204

CONTEXT = IterContext.from_rows([
    (1, C1, 0, 15),
    (2, C2, 12, 35),
    (1, C3, 20, 30),
    (1, C4, 55, 80),
])

CANDIDATES = RegionTable.from_rows([
    (5, 10, R1),
    (22, 45, R2),
    (40, 60, R3),
    (65, 70, R4),
])


def run_trace():
    events = []
    result = ll_select_narrow(CONTEXT, CANDIDATES, trace=events.append)
    return events, result


class TestFigure4:
    def test_result_matches_paper(self):
        _events, result = run_trace()
        assert result == {1: [R1, R4]}

    def test_trace_event_sequence(self):
        events, _result = run_trace()
        assert events == [
            ("add-active", C1),           # paper step 1: add c1
            ("emit", 1, R1),              # paper step 2: (iter1, r1)
            ("add-active", C2),           # paper step 3: push c2
            ("replace-active", C1, C3),   # paper step 4 (see erratum)
            ("skip-candidate", R2),       # paper step 6: skip r2
            ("trim", C3),                 # r3 expires c3 (end 30 < 40)
            ("trim", C2),                 # ... and c2 (end 35 < 40)
            ("skip-candidate", R3),       # paper step 8: skip r3
            ("add-active", C4),           # paper step 7: add c4
            ("emit", 1, R4),              # paper step 9: (iter1, r4)
            ("exit",),                    # paper step 10
        ]

    def test_heap_structure_same_result(self):
        result = ll_select_narrow(CONTEXT, CANDIDATES,
                                  active_structure="heap")
        assert result == {1: [R1, R4]}

    def test_erratum_candidate_inside_c3_is_found(self):
        """The case where the printed skip condition would lose output:
        a candidate strictly inside c3 = [20,30] (iter 1)."""
        candidates = RegionTable.from_rows([
            (5, 10, R1),
            (23, 27, 299),   # inside c3 (iter 1) and inside c2 (iter 2)
            (65, 70, R4),
        ])
        result = ll_join(StandoffOp.SELECT_NARROW, CONTEXT, candidates)
        assert result == {1: [R1, R4, 299], 2: [299]}

    def test_other_operators_on_figure4_inputs(self):
        wide = ll_join(StandoffOp.SELECT_WIDE, CONTEXT, CANDIDATES)
        # iter1 active areas: c1 [0,15], c3 [20,30], c4 [55,80]:
        #   r1 [5,10] overlaps c1; r2 [22,45] overlaps c3;
        #   r3 [40,60] overlaps c4; r4 [65,70] overlaps c4.
        # iter2 (c2 [12,35]): r2 overlaps.
        assert wide == {1: [R1, R2, R3, R4], 2: [R2]}
        reject_narrow = ll_join(StandoffOp.REJECT_NARROW, CONTEXT,
                                CANDIDATES)
        assert reject_narrow == {1: [R2, R3], 2: [R1, R2, R3, R4]}
        reject_wide = ll_join(StandoffOp.REJECT_WIDE, CONTEXT, CANDIDATES)
        assert reject_wide == {1: [], 2: [R1, R3, R4]}
