"""Differential testing of the vectorized Staircase Join family.

Three independent implementations of every staircase axis must agree
exactly on randomized documents and contexts:

* ``vectorized`` — the batched columnar kernels
  (``staircase/kernels_vec.py``); both the lazy dict view and the
  fully-decoded ``to_dict()`` form must match;
* ``ll`` — the dict-shaped loop-lifted reference
  (``staircase/loop_lifted.ll_axis_join``: single-pass descendant,
  per-iteration set joins for the other axes);
* the per-iteration ``staircase.py`` joins called directly (the
  iterated baseline).

On top of the kernel-level equivalences, engine-level tests assert the
loop-lifted strategy matches the ``basic`` strategy's DOM walk for every
staircase axis and kernel — including the attribute corner cases
(``descendant::node()`` must *not* include attributes) — and columnar
property tests check the CSR invariants of axis output.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    FAMILY_STAIRCASE,
    KERNEL_AUTO,
    KERNEL_LL,
    KERNEL_VECTORIZED,
    KERNELS,
)
from repro.relational import ColumnarResult
from repro.staircase import (
    ancestor_join,
    child_join,
    descendant_join,
    following_join,
    following_sibling_join,
    iterated_descendant_join,
    ll_axis_join,
    ll_descendant_join,
    preceding_join,
    preceding_sibling_join,
    staircase_join,
    vec_staircase_join,
)
from repro.xmldb import parse_document, shred
from repro.xquery import Database

AXES = ("descendant", "ancestor", "child", "following", "preceding",
        "following-sibling", "preceding-sibling")

PER_SET_JOINS = {
    "ancestor": ancestor_join,
    "child": child_join,
    "following": following_join,
    "preceding": preceding_join,
    "following-sibling": following_sibling_join,
    "preceding-sibling": preceding_sibling_join,
}


def random_tree_xml(shape: list[int]) -> str:
    """Deterministic nested document from a shape list (child fanouts);
    sprinkles attributes, text and comments through the structure."""
    parts = ["<r>"]
    depth = 0
    for i, fanout in enumerate(shape):
        if fanout % 3 == 0 and depth > 0:
            parts.append("</n>")
            depth -= 1
        elif fanout % 5 == 0:
            parts.append(f"t{i}" if fanout % 2 else "<!--c-->")
        else:
            attr = f' i="{fanout}"' if fanout % 2 else ""
            parts.append(f"<n{attr}>")
            depth += 1
    parts.extend("</n>" * depth)
    parts.append("</r>")
    return "".join(parts)


trees = st.lists(st.integers(0, 8), min_size=0, max_size=40).map(
    random_tree_xml)
contexts = st.lists(st.tuples(st.integers(1, 4), st.integers(0, 30)),
                    max_size=10)


def iterated_axis_join(sh, axis, context, candidates=None):
    """Per-iteration staircase joins — the iterated baseline."""
    if axis == "descendant":
        return iterated_descendant_join(sh, context, candidates)
    per_iter: dict[int, list[int]] = {}
    for it, pre in context:
        per_iter.setdefault(it, []).append(pre)
    out: dict[int, list[int]] = {}
    for it, pres in per_iter.items():
        res = PER_SET_JOINS[axis](sh, np.asarray(pres, np.int64),
                                  candidates)
        if len(res):
            out[it] = res.tolist()
    return out


def assert_csr_invariants(result: ColumnarResult) -> None:
    """Structural invariants of the columnar axis output."""
    iters, offsets, values = result.iters, result.offsets, result.values
    assert len(offsets) == len(iters) + 1
    assert offsets[0] == 0 and offsets[-1] == len(values)
    assert np.all(np.diff(offsets) >= 0)
    if len(iters) > 1:
        assert np.all(np.diff(iters) > 0), "iters must be strictly asc"
    for a, b in zip(offsets[:-1].tolist(), offsets[1:].tolist()):
        chunk = values[a:b]
        if len(chunk) > 1:
            assert np.all(np.diff(chunk) > 0), \
                "per-iteration ids must be unique ascending"


# ----------------------------------------------------------------------
# kernel-level differential: vectorized == ll == iterated
# ----------------------------------------------------------------------

class TestDifferential:
    @pytest.mark.parametrize("axis", AXES)
    @given(xml=trees, raw_context=contexts)
    @settings(max_examples=40, deadline=None)
    def test_vec_equals_ll_equals_iterated(self, axis, xml, raw_context):
        doc = parse_document(xml)
        sh = shred(doc)
        context = [(it, pre) for it, pre in raw_context
                   if pre < doc.node_count]
        columnar = vec_staircase_join(axis, sh, context)
        assert isinstance(columnar, ColumnarResult)
        assert_csr_invariants(columnar)
        reference = ll_axis_join(sh, axis, context)
        assert columnar.to_dict() == reference, (axis, xml, context)
        assert columnar.to_dict() == iterated_axis_join(sh, axis, context)

    @pytest.mark.parametrize("axis", AXES)
    @given(xml=trees, raw_context=contexts,
           step=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_candidate_restriction(self, axis, xml, raw_context, step):
        doc = parse_document(xml)
        sh = shred(doc)
        context = [(it, pre) for it, pre in raw_context
                   if pre < doc.node_count]
        candidates = sh.pre[::step]
        columnar = vec_staircase_join(axis, sh, context, candidates)
        assert_csr_invariants(columnar)
        assert columnar.to_dict() == \
            ll_axis_join(sh, axis, context, candidates)
        assert columnar.to_dict() == \
            iterated_axis_join(sh, axis, context, candidates)

    @pytest.mark.parametrize("axis", ("descendant", "ancestor"))
    @given(xml=trees, raw_context=contexts)
    @settings(max_examples=25, deadline=None)
    def test_or_self(self, axis, xml, raw_context):
        doc = parse_document(xml)
        sh = shred(doc)
        context = [(it, pre) for it, pre in raw_context
                   if pre < doc.node_count]
        for candidates in (None, sh.all_element_pres()):
            columnar = vec_staircase_join(axis, sh, context, candidates,
                                          or_self=True)
            assert_csr_invariants(columnar)
            assert columnar.to_dict() == ll_axis_join(
                sh, axis, context, candidates, or_self=True)

    def test_descendant_matches_seed_oracle(self):
        """The historical contract: vec == ll_descendant_join ==
        iterated_descendant_join, exactly (same keys, same lists)."""
        xml = '<r><a i="1"><b/><c>t</c></a><a><b/></a></r>'
        doc = parse_document(xml)
        sh = shred(doc)
        context = [(1, doc.root_element.find("a").pre),
                   (2, doc.root_element.pre),
                   (2, doc.root_element.find("a").pre)]
        expected = ll_descendant_join(sh, context)
        assert expected == iterated_descendant_join(sh, context)
        assert vec_staircase_join("descendant", sh,
                                  context).to_dict() == expected


class TestEdgeCases:
    def test_empty_context(self):
        sh = shred(parse_document("<r/>"))
        for axis in AXES:
            assert vec_staircase_join(axis, sh, []).to_dict() == {}
            assert ll_axis_join(sh, axis, []) == {}

    def test_empty_candidates(self):
        doc = parse_document("<r><a><b/></a></r>")
        sh = shred(doc)
        context = [(0, doc.root_element.pre)]
        empty = np.empty(0, np.int64)
        for axis in AXES:
            assert vec_staircase_join(axis, sh, context,
                                      empty).to_dict() == {}

    def test_nested_context_pruned_not_lost(self):
        """A context node nested in another context node of the same
        iteration is pruned as a window but kept as a result."""
        doc = parse_document("<r><a><b><c/></b></a></r>")
        sh = shred(doc)
        a = doc.root_element.find("a")
        b = a.find("b")
        got = vec_staircase_join("descendant", sh,
                                 [(7, a.pre), (7, b.pre)]).to_dict()
        assert got == {7: [b.pre, b.find("c").pre]}

    def test_iterations_independent(self):
        doc = parse_document("<r><a><b/></a><c><d/></c></r>")
        sh = shred(doc)
        root = doc.root_element
        a, c = root.find("a"), root.find("c")
        got = vec_staircase_join("descendant", sh,
                                 [(1, a.pre), (2, c.pre)]).to_dict()
        assert got == {1: [a.find("b").pre], 2: [c.find("d").pre]}

    def test_following_preceding_partition(self):
        """For any single node: ancestors + descendants-or-self +
        following + preceding partition the non-attribute rows."""
        xml = ('<r><a><b>t1</b><c/></a><d><e><f/></e>t2</d>'
               '<!--x--><g/></r>')
        doc = parse_document(xml)
        sh = shred(doc)
        pool = sh.non_attribute_pres()
        for pre in pool.tolist():
            parts = [
                vec_staircase_join("ancestor", sh, [(0, pre)], pool),
                vec_staircase_join("descendant", sh, [(0, pre)], pool,
                                   or_self=True),
                vec_staircase_join("following", sh, [(0, pre)], pool),
                vec_staircase_join("preceding", sh, [(0, pre)], pool),
            ]
            union: list[int] = []
            for part in parts:
                union.extend(part.to_dict().get(0, []))
            assert sorted(union) == pool.tolist(), pre
            assert len(union) == len(set(union)), pre

    def test_sibling_axes_of_attributes_and_roots_are_empty(self):
        """Attribute nodes are not children of their owner, and the
        document node has no parent — neither has siblings (the DOM
        walk yields nothing for them)."""
        doc = parse_document('<r><a i="1" j="2"/><b/></r>')
        sh = shred(doc)
        attr_pres = sh.pre[sh.kind == 5].tolist()
        assert attr_pres, "fixture must carry attributes"
        context = [(0, 0)] + [(0, pre) for pre in attr_pres]
        for axis in ("following-sibling", "preceding-sibling"):
            assert vec_staircase_join(axis, sh, context).to_dict() == {}
            assert ll_axis_join(sh, axis, context) == {}

    def test_sibling_pool_excludes_attribute_rows(self):
        """Attribute rows share the parent column with genuine children
        but are never siblings — even when the pool contains them."""
        doc = parse_document('<r><a/><b i="1" j="2"><c/></b><d/></r>')
        sh = shred(doc)
        root = doc.root_element
        a = root.find("a")
        got = vec_staircase_join("following-sibling", sh,
                                 [(0, a.pre)]).to_dict()
        expected = [root.find("b").pre, root.find("d").pre]
        assert got == {0: expected}
        assert ll_axis_join(sh, "following-sibling",
                            [(0, a.pre)]) == {0: expected}

    def test_duplicate_attribute_anchors_deduped(self):
        """Two attributes of one element anchor at the same owner pre;
        the following/preceding kernels must not emit duplicate ranks
        (the anchor boundary dedupes)."""
        doc = parse_document('<r><x i="1" j="2"/><y/><z/></r>')
        sh = shred(doc)
        x = doc.root_element.find("x")
        attrs = [attr.pre for attr in x.attributes]
        assert len(attrs) == 2
        context = [(3, pre) for pre in attrs]
        for axis in ("following", "preceding"):
            columnar = vec_staircase_join(axis, sh, context)
            assert_csr_invariants(columnar)   # dupes would violate CSR
            assert columnar.to_dict() == ll_axis_join(sh, axis, context)
        following = vec_staircase_join("following", sh,
                                       context).to_dict()
        y, z = doc.root_element.find("y"), doc.root_element.find("z")
        assert following == {3: [y.pre, z.pre]}

    def test_or_self_rejected_on_unsupported_axes(self):
        sh = shred(parse_document("<r><a/></r>"))
        for axis in ("child", "following", "preceding",
                     "following-sibling", "preceding-sibling"):
            with pytest.raises(ValueError, match="or-self"):
                vec_staircase_join(axis, sh, [(0, 0)], or_self=True)
            with pytest.raises(ValueError, match="or-self"):
                ll_axis_join(sh, axis, [(0, 0)], or_self=True)

    def test_unknown_axis_rejected(self):
        sh = shred(parse_document("<r/>"))
        with pytest.raises(ValueError, match="staircase"):
            vec_staircase_join("sideways", sh, [(0, 0)])
        with pytest.raises(ValueError, match="staircase"):
            ll_axis_join(sh, "sideways", [(0, 0)])


# ----------------------------------------------------------------------
# registry dispatch
# ----------------------------------------------------------------------

class TestRegistryDispatch:
    def test_staircase_join_kernels_agree(self):
        doc = parse_document(random_tree_xml(list(range(1, 30))))
        sh = shred(doc)
        rng = random.Random(5)
        context = [(rng.randrange(5), rng.randrange(doc.node_count))
                   for _ in range(20)]
        for axis in AXES:
            vec = staircase_join(axis, sh, context,
                                 kernel=KERNEL_VECTORIZED)
            ref = staircase_join(axis, sh, context, kernel=KERNEL_LL)
            assert isinstance(vec, ColumnarResult)
            assert isinstance(ref, dict)
            assert vec.to_dict() == ref
            auto = staircase_join(axis, sh, context, kernel=KERNEL_AUTO)
            assert dict(auto) == ref

    def test_auto_resolves_by_size(self):
        small = KERNELS.select(FAMILY_STAIRCASE, KERNEL_AUTO,
                               context_rows=1, candidate_rows=1)
        assert small == KERNEL_LL
        big = KERNELS.select(FAMILY_STAIRCASE, KERNEL_AUTO,
                             context_rows=10_000, candidate_rows=10_000)
        assert big == KERNEL_VECTORIZED

    def test_unknown_staircase_kernel_rejected(self):
        sh = shred(parse_document("<r/>"))
        with pytest.raises(ValueError, match="unknown join kernel"):
            staircase_join("descendant", sh, [(0, 0)], kernel="warp9")


# ----------------------------------------------------------------------
# engine level: the DOM walk is the oracle
# ----------------------------------------------------------------------

ENGINE_XML = ('<r a="1"><x b="2"><y/>mid<!--c--></x>'
              '<x c="3"><z><y/></z></x>tail<?pi data?></r>')

ENGINE_QUERIES = [
    'doc("d.xml")/r/descendant::node()',
    'doc("d.xml")/r/descendant-or-self::node()',
    'doc("d.xml")//x/descendant::y',
    'doc("d.xml")//y/ancestor::*',
    'doc("d.xml")//y/ancestor-or-self::node()',
    'doc("d.xml")//x/child::node()',
    'doc("d.xml")//y/following::node()',
    'doc("d.xml")//y/preceding::node()',
    'doc("d.xml")//x/descendant::text()',
    'doc("d.xml")/r/descendant::comment()',
    'doc("d.xml")/r/descendant::processing-instruction()',
    'for $x in doc("d.xml")//x return count($x/descendant::node())',
    'for $x in doc("d.xml")//x return $x/following::x',
    'doc("d.xml")//x/@b/descendant-or-self::node()',
    'doc("d.xml")//x/@b/following::*',
    'doc("d.xml")//x/@b/ancestor::*',
    'doc("d.xml")//x/following-sibling::node()',
    'doc("d.xml")//y/following-sibling::*',
    'doc("d.xml")//x/preceding-sibling::node()',
    'doc("d.xml")//z/preceding-sibling::text()',
    'for $x in doc("d.xml")//x return count($x/following-sibling::x)',
    'doc("d.xml")//x/@b/following-sibling::node()',
    'doc("d.xml")//x/@b/preceding-sibling::node()',
]


@pytest.mark.parametrize("kernel", [KERNEL_LL, KERNEL_VECTORIZED,
                                    KERNEL_AUTO])
@pytest.mark.parametrize("query", ENGINE_QUERIES)
def test_bulk_staircase_matches_dom_walk(kernel, query):
    """The loop-lifted staircase fast path must agree with the basic
    strategy's DOM walk under every kernel — including the node() pools,
    which exclude attribute nodes on the tree axes."""
    db = Database()
    db.add_document("d.xml", ENGINE_XML)
    reference = db.query(query, strategy="basic").serialize()
    got = db.query(query, strategy="ll",
                   staircase_kernel=kernel).serialize()
    assert got == reference, (kernel, query)


@pytest.mark.parametrize("kernel", [KERNEL_LL, KERNEL_VECTORIZED])
def test_bulk_staircase_prefixed_name_tests(kernel):
    """A name test matches by local name in the DOM walk; the staircase
    candidate pool must union the element-index entries sharing the
    local name, not just the exact tag."""
    db = Database()
    db.add_document("d.xml", '<root><n:foo><bar/></n:foo><foo/></root>')
    for query in ('doc("d.xml")/root/child::foo',
                  'doc("d.xml")/root/descendant::foo',
                  'doc("d.xml")//bar/ancestor::foo',
                  'doc("d.xml")//bar/following::foo',
                  'doc("d.xml")/root/descendant::n:foo'):
        reference = db.query(query, strategy="basic").serialize()
        got = db.query(query, strategy="ll",
                       staircase_kernel=kernel).serialize()
        assert got == reference, (kernel, query)


def test_bulk_staircase_random_documents():
    """Randomized end-to-end check through the query engine."""
    rng = random.Random(99)
    for trial in range(6):
        xml = random_tree_xml([rng.randrange(9) for _ in range(25)])
        db = Database()
        db.add_document("d.xml", xml)
        for axis in ("descendant", "descendant-or-self", "ancestor",
                     "child", "following", "preceding",
                     "following-sibling", "preceding-sibling"):
            query = f'doc("d.xml")//n/{axis}::node()'
            reference = db.query(query, strategy="basic").serialize()
            for kernel in (KERNEL_LL, KERNEL_VECTORIZED):
                got = db.query(query, strategy="ll",
                               staircase_kernel=kernel).serialize()
                assert got == reference, (trial, axis, kernel)
