"""Differential testing: the three strategies must agree on everything.

Hypothesis generates random stand-off annotation documents (nested and
overlapping regions, several element names); a battery of query shapes
covering all four axes, predicates, nesting and aggregation runs under
``udf``, ``basic`` and ``ll``.  Any divergence is a bug in one of the
join algorithms or evaluators.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xquery import Database

NAMES = ("alpha", "beta", "gamma")


@st.composite
def annotation_documents(draw):
    """A flat annotated document with random overlapping regions."""
    n = draw(st.integers(1, 18))
    parts = ["<doc>"]
    for i in range(n):
        name = draw(st.sampled_from(NAMES))
        start = draw(st.integers(0, 80))
        length = draw(st.integers(0, 40))
        parts.append(
            f'<{name} nr="{i}" start="{start}" end="{start + length}"/>')
    parts.append("</doc>")
    return "".join(parts)


QUERY_BATTERY = [
    'doc("d.xml")//alpha/select-narrow::beta',
    'doc("d.xml")//alpha/select-wide::beta',
    'doc("d.xml")//alpha/reject-narrow::beta',
    'doc("d.xml")//alpha/reject-wide::beta',
    'doc("d.xml")//beta/select-wide::*',
    'for $a in doc("d.xml")//alpha return count($a/select-narrow::gamma)',
    'for $a in doc("d.xml")//alpha '
    'return <r n="{$a/@nr}">{$a/select-wide::beta/@nr}</r>',
    'for $a in doc("d.xml")//alpha '
    'for $b in $a/select-wide::beta '
    'return concat($a/@nr, "-", $b/@nr)',
    'count(doc("d.xml")//gamma/reject-wide::alpha)',
    'doc("d.xml")//alpha[@nr="0"]/select-wide::beta[1]',
    'for $x in doc("d.xml")//beta where count($x/select-narrow::gamma) '
    '> 0 return $x/@nr',
]


@pytest.mark.parametrize("query", QUERY_BATTERY)
@given(xml=annotation_documents())
@settings(max_examples=25, deadline=None)
def test_strategies_agree(query, xml):
    db = Database()
    db.add_document("d.xml", xml)
    results = {}
    for strategy in ("udf", "basic", "ll"):
        results[strategy] = db.query(query, strategy=strategy).serialize()
    assert results["udf"] == results["basic"], xml
    assert results["udf"] == results["ll"], xml


@given(xml=annotation_documents())
@settings(max_examples=25, deadline=None)
def test_active_structures_agree(xml):
    db = Database()
    db.add_document("d.xml", xml)
    query = 'doc("d.xml")//alpha/select-narrow::beta'
    a = db.query(query, active_structure="list").serialize()
    b = db.query(query, active_structure="heap").serialize()
    assert a == b


@given(xml=annotation_documents())
@settings(max_examples=25, deadline=None)
def test_select_reject_partition_candidates(xml):
    """select-X and reject-X partition the candidate set (§3.1)."""
    db = Database()
    db.add_document("d.xml", xml)
    total = db.query('count(doc("d.xml")//beta)')[0]
    has_alpha = db.query('count(doc("d.xml")//alpha)')[0]
    if has_alpha == 0:
        return
    for flavour in ("narrow", "wide"):
        selected = db.query(
            f'count(doc("d.xml")//alpha/select-{flavour}::beta)')[0]
        rejected = db.query(
            f'count(doc("d.xml")//alpha/reject-{flavour}::beta)')[0]
        assert selected + rejected == total, flavour


@given(xml=annotation_documents())
@settings(max_examples=25, deadline=None)
def test_narrow_subset_of_wide(xml):
    """Containment implies overlap: select-narrow ⊆ select-wide."""
    db = Database()
    db.add_document("d.xml", xml)
    narrow = db.query('doc("d.xml")//alpha/select-narrow::beta')
    wide = db.query('doc("d.xml")//alpha/select-wide::beta')
    wide_ids = {id(n) for n in wide}
    assert all(id(n) in wide_ids for n in narrow)


@pytest.mark.parametrize("query", QUERY_BATTERY[:6])
@given(xml=annotation_documents())
@settings(max_examples=15, deadline=None)
def test_pushdown_policies_agree(query, xml):
    """§3.3 (iii): pushdown is a plan choice, never a semantics choice."""
    db = Database()
    db.add_document("d.xml", xml)
    results = {policy: db.query(query, pushdown=policy).serialize()
               for policy in ("always", "never", "auto")}
    assert results["always"] == results["never"]
    assert results["always"] == results["auto"]
