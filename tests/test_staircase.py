"""Staircase Join tests: axes against a DOM-walk oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.staircase import (
    ancestor_join,
    child_join,
    descendant_join,
    iterated_descendant_join,
    ll_descendant_join,
    parent_join,
    prune_context,
)
from repro.xmldb import Element, parse_document, shred


def random_tree_xml(shape: list[int]) -> str:
    """Deterministic nested document from a shape list (child fanouts)."""
    parts = ["<r>"]
    depth = 0
    for fanout in shape:
        if fanout % 3 == 0 and depth > 0:
            parts.append("</n>")
            depth -= 1
        else:
            parts.append(f'<n i="{fanout}">')
            depth += 1
    parts.extend("</n>" * depth)
    parts.append("</r>")
    return "".join(parts)


trees = st.lists(st.integers(0, 8), min_size=0, max_size=40).map(
    random_tree_xml)


def dom_descendants(doc, pres):
    out = set()
    for pre in pres:
        node = doc.node_by_pre(int(pre))
        out.update(d.pre for d in node.descendants())
        # attributes live inside the window as well
        for d in [node, *node.descendants()]:
            if isinstance(d, Element):
                out.update(a.pre for a in d.attributes)
    return sorted(out)


class TestPrune:
    def test_nested_pruned(self):
        pres = np.asarray([1, 2, 5], dtype=np.int64)
        sizes = np.asarray([10, 1, 2], dtype=np.int64)
        assert prune_context(pres, sizes).tolist() == [0]

    def test_disjoint_kept(self):
        pres = np.asarray([1, 5], dtype=np.int64)
        sizes = np.asarray([2, 2], dtype=np.int64)
        assert prune_context(pres, sizes).tolist() == [0, 1]


class TestDescendant:
    @given(trees, st.sets(st.integers(0, 30), max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_matches_dom_walk(self, xml, raw_pres):
        doc = parse_document(xml)
        sh = shred(doc)
        pres = np.asarray([p for p in raw_pres if p < doc.node_count],
                          dtype=np.int64)
        got = descendant_join(sh, pres).tolist()
        assert got == dom_descendants(doc, pres)

    def test_candidate_pushdown(self):
        doc = parse_document("<r><a><b/><c/></a><b/></r>")
        sh = shred(doc)
        root = doc.root_element
        a = root.find("a")
        bs = sh.elements_named("b")
        got = descendant_join(sh, np.asarray([a.pre]), bs).tolist()
        assert got == [a.find("b").pre]

    def test_empty_context(self):
        doc = parse_document("<r/>")
        sh = shred(doc)
        assert descendant_join(sh, np.empty(0, np.int64)).tolist() == []


class TestOtherAxes:
    def test_ancestors(self):
        doc = parse_document("<r><a><b><c/></b></a></r>")
        sh = shred(doc)
        c = doc.root_element.find("a").find("b").find("c")
        got = ancestor_join(sh, np.asarray([c.pre])).tolist()
        expected = sorted(n.pre for n in c.ancestors())
        assert got == expected

    def test_children(self):
        doc = parse_document("<r><a/><b><c/></b><d/></r>")
        sh = shred(doc)
        root = doc.root_element
        got = child_join(sh, np.asarray([root.pre])).tolist()
        assert got == [child.pre for child in root.children]

    def test_parent(self):
        doc = parse_document("<r><a/><b/></r>")
        sh = shred(doc)
        root = doc.root_element
        kids = np.asarray([c.pre for c in root.children])
        assert parent_join(sh, kids).tolist() == [root.pre]


class TestLoopLifted:
    @given(trees,
           st.lists(st.tuples(st.integers(1, 4), st.integers(0, 25)),
                    max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_equals_iterated(self, xml, raw_context):
        doc = parse_document(xml)
        sh = shred(doc)
        context = [(it, pre) for it, pre in raw_context
                   if pre < doc.node_count]
        expected = iterated_descendant_join(sh, context)
        got = ll_descendant_join(sh, context)
        assert got == expected

    def test_iterations_independent(self):
        doc = parse_document("<r><a><b/></a><c><d/></c></r>")
        sh = shred(doc)
        root = doc.root_element
        a, c = root.find("a"), root.find("c")
        got = ll_descendant_join(sh, [(1, a.pre), (2, c.pre)])
        assert got == {1: [a.find("b").pre], 2: [c.find("d").pre]}

    def test_shared_pre_across_iters(self):
        doc = parse_document("<r><a><b/></a></r>")
        sh = shred(doc)
        a = doc.root_element.find("a")
        got = ll_descendant_join(sh, [(1, a.pre), (2, a.pre), (3, a.pre)])
        b_pre = a.find("b").pre
        assert got == {1: [b_pre], 2: [b_pre], 3: [b_pre]}

    def test_candidate_restriction(self):
        doc = parse_document("<r><a><b/><c/></a></r>")
        sh = shred(doc)
        a = doc.root_element.find("a")
        cands = sh.elements_named("c")
        got = ll_descendant_join(sh, [(1, a.pre)], cands)
        assert got == {1: [a.find("c").pre]}
