"""Tests for the XML tokenizer, parser, DOM and serializer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XMLSyntaxError
from repro.xmldb import (
    Comment,
    Element,
    ProcessingInstruction,
    Text,
    parse_document,
    parse_fragment,
    serialize,
)


class TestParserBasics:
    def test_minimal_document(self):
        doc = parse_document("<a/>")
        assert doc.root_element.tag == "a"
        assert doc.root_element.children == []

    def test_nested_elements(self):
        doc = parse_document("<a><b><c/></b><d/></a>")
        a = doc.root_element
        assert [e.tag for e in a.elements()] == ["b", "d"]
        b = a.find("b")
        assert b.find("c") is not None

    def test_attributes(self):
        doc = parse_document('<a x="1" y="two &amp; three"/>')
        a = doc.root_element
        assert a.get_attribute("x") == "1"
        assert a.get_attribute("y") == "two & three"
        assert a.get_attribute("z") is None
        assert a.get_attribute("z", "dflt") == "dflt"

    def test_single_quoted_attributes(self):
        doc = parse_document("<a x='va\"lue'/>")
        assert doc.root_element.get_attribute("x") == 'va"lue'

    def test_text_content(self):
        doc = parse_document("<a>hello <b>world</b>!</a>")
        assert doc.root_element.string_value() == "hello world!"

    def test_entities_in_text(self):
        doc = parse_document("<a>&lt;tag&gt; &amp; &#65;&#x42;</a>")
        assert doc.root_element.string_value() == "<tag> & AB"

    def test_cdata(self):
        doc = parse_document("<a><![CDATA[<not> & markup]]></a>")
        assert doc.root_element.string_value() == "<not> & markup"

    def test_comment_and_pi(self):
        doc = parse_document("<a><!-- note --><?php echo ?></a>")
        kids = doc.root_element.children
        assert isinstance(kids[0], Comment)
        assert kids[0].text == " note "
        assert isinstance(kids[1], ProcessingInstruction)
        assert kids[1].target == "php"

    def test_xml_declaration_skipped(self):
        doc = parse_document('<?xml version="1.0" encoding="UTF-8"?>\n<a/>')
        assert doc.root_element.tag == "a"

    def test_doctype_skipped(self):
        doc = parse_document(
            '<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]>\n<a>x</a>')
        assert doc.root_element.string_value() == "x"

    def test_whitespace_stripping_default_off_in_parse(self):
        doc = parse_document("<a>\n  <b/>\n</a>",
                             keep_whitespace_text=False)
        assert all(isinstance(c, Element)
                   for c in doc.root_element.children)

    def test_adjacent_text_merged(self):
        doc = parse_document("<a>one&amp;two</a>")
        texts = [c for c in doc.root_element.children
                 if isinstance(c, Text)]
        assert len(texts) == 1
        assert texts[0].text == "one&two"


class TestWellFormedness:
    @pytest.mark.parametrize("bad", [
        "<a>",                      # unclosed
        "<a></b>",                  # mismatched
        "</a>",                     # close without open
        "<a/><b/>",                 # multiple roots
        "",                         # empty
        "text only",                # no root
        "<a x=1/>",                 # unquoted attribute
        '<a x="1" x="2"/>',         # duplicate attribute
        "<a>&undefined;</a>",       # unknown entity
        "<a>&broken</a>",           # bare ampersand
        "<1tag/>",                  # bad name
        "<a><!-- -- --></a>",       # double hyphen in comment
        '<a b="<"/>',               # raw < in attribute
        "<a><![CDATA[x]]</a>",      # unterminated CDATA
    ])
    def test_rejects(self, bad):
        with pytest.raises(XMLSyntaxError):
            parse_document(bad)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as info:
            parse_document("<a>\n  <b></c>\n</a>")
        assert info.value.line == 2


class TestNumbering:
    def test_pre_order_ranks(self):
        doc = parse_document("<a><b><c/></b><d/></a>")
        a = doc.root_element
        b = a.find("b")
        c = b.find("c")
        d = a.find("d")
        assert doc.pre == 0
        assert (a.pre, b.pre, c.pre, d.pre) == (1, 2, 3, 4)
        assert a.size == 3
        assert b.size == 1
        assert doc.size == 4

    def test_attributes_numbered_after_element(self):
        doc = parse_document('<a x="1"><b y="2" z="3"/></a>')
        a = doc.root_element
        b = a.find("b")
        x = a.attribute_node("x")
        assert x.pre == a.pre + 1
        assert b.pre == 3
        assert b.attribute_node("y").pre == 4
        assert b.attribute_node("z").pre == 5
        # attribute containment invariant for staircase-style windows
        assert a.pre < x.pre <= a.pre + a.size

    def test_levels(self):
        doc = parse_document("<a><b><c/></b></a>")
        c = doc.root_element.find("b").find("c")
        assert doc.level == 0
        assert c.level == 3

    def test_node_by_pre_roundtrip(self):
        doc = parse_document("<a><b/>text<c><d/></c></a>")
        for node in doc.all_nodes():
            assert doc.node_by_pre(node.pre) is node

    def test_document_property(self):
        doc = parse_document("<a><b/></a>")
        b = doc.root_element.find("b")
        assert b.document is doc
        assert b.root is doc


class TestSerializer:
    def test_roundtrip_simple(self):
        text = '<a x="1"><b>hi &amp; bye</b><c/></a>'
        doc = parse_document(text)
        assert serialize(doc.root_element) == text

    def test_escapes_attribute_quotes(self):
        el = Element("a", {"x": 'va"l'})
        assert serialize(el) == '<a x="va&quot;l"/>'

    def test_indent_mode(self):
        doc = parse_document("<a><b><c/></b></a>")
        pretty = serialize(doc.root_element, indent=True)
        assert pretty == "<a>\n  <b>\n    <c/>\n  </b>\n</a>"

    def test_mixed_content_not_indented(self):
        doc = parse_document("<a>one<b/>two</a>")
        assert serialize(doc.root_element, indent=True) == "<a>one<b/>two</a>"

    @given(st.text(alphabet=st.characters(codec="utf-8",
                                          exclude_characters="\r"),
                   max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_text_roundtrip_property(self, text):
        el = Element("t")
        el.append_text(text)
        doc_text = serialize(el)
        reparsed = parse_document(doc_text)
        assert reparsed.root_element.string_value() == text

    @given(st.text(alphabet=st.characters(codec="utf-8",
                                          exclude_characters="\r\n\t"),
                   max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_attribute_roundtrip_property(self, value):
        el = Element("t", {"v": value})
        reparsed = parse_document(serialize(el))
        assert reparsed.root_element.get_attribute("v") == value


class TestFragments:
    def test_parse_fragment_multiple_roots(self):
        nodes = parse_fragment("<a/>text<b/>")
        assert len(nodes) == 3
        assert nodes[0].tag == "a"
        assert isinstance(nodes[1], Text)
        assert nodes[2].tag == "b"
