"""White-box tests for the loop-lifted evaluator's machinery."""

import pytest

from repro.core.steps import Strategy
from repro.errors import UnsupportedFeatureError
from repro.xquery import Database, parse
from repro.xquery.bulk import BulkEnv, eval_bulk, evaluate_module_bulk
from repro.xquery.context import DynamicContext
from repro.xquery.parser import parse_expr
from repro.relational import IterSeq


def make_env(db: Database, loop, variables=None):
    ctx = DynamicContext(db.store, strategy=Strategy.LOOP_LIFTED)
    return BulkEnv(ctx, loop, variables or {})


@pytest.fixture
def db():
    database = Database()
    database.add_document("d.xml", """
        <s>
          <c id="1" start="0" end="10"/>
          <c id="2" start="20" end="30"/>
          <t start="1" end="2"/>
          <t start="25" end="26"/>
          <t start="50" end="60"/>
        </s>""")
    return database


class TestIterSeqResults:
    def test_literal_lifted_into_every_iteration(self, db):
        env = make_env(db, [4, 7, 9])
        seq = eval_bulk(parse_expr("42"), env)
        assert seq.items_for(4) == [42]
        assert seq.items_for(9) == [42]
        assert seq.items_for(5) == []

    def test_arithmetic_per_iteration(self, db):
        env = make_env(db, [1, 2],
                       {"x": IterSeq({1: [10], 2: [20]})})
        seq = eval_bulk(parse_expr("$x + 1"), env)
        assert seq.items_for(1) == [11]
        assert seq.items_for(2) == [21]

    def test_if_splits_loop(self, db):
        env = make_env(db, [1, 2, 3],
                       {"x": IterSeq({1: [1], 2: [2], 3: [3]})})
        seq = eval_bulk(parse_expr(
            'if ($x mod 2 = 0) then "even" else "odd"'), env)
        assert [seq.items_for(i)[0] for i in (1, 2, 3)] == \
            ["odd", "even", "odd"]

    def test_empty_iteration_stays_empty(self, db):
        env = make_env(db, [1, 2], {"x": IterSeq({1: [5]})})
        seq = eval_bulk(parse_expr("$x * 2"), env)
        assert seq.items_for(1) == [10]
        assert seq.items_for(2) == []


class TestSingleJoinCall:
    def test_nested_loops_still_one_join(self, db):
        """Even a doubly nested for-loop runs the StandOff step once."""
        ctx = DynamicContext(db.store, strategy=Strategy.LOOP_LIFTED)
        module = parse(
            'for $i in (1, 2) '
            'for $c in doc("d.xml")//c '
            'return count($c/select-narrow::t)')
        result = evaluate_module_bulk(module, ctx)
        assert result == [1, 1, 1, 1]
        assert ctx.standoff_join_calls == 1

    def test_constructor_content_stays_lifted(self, db):
        ctx = DynamicContext(db.store, strategy=Strategy.LOOP_LIFTED)
        module = parse(
            'for $c in doc("d.xml")//c '
            'return <hits n="{count($c/select-narrow::t)}"/>')
        result = evaluate_module_bulk(module, ctx)
        assert [el.get_attribute("n") for el in result] == ["1", "1"]
        assert ctx.standoff_join_calls == 1

    def test_where_clause_filters_before_body_join(self, db):
        ctx = DynamicContext(db.store, strategy=Strategy.LOOP_LIFTED)
        module = parse(
            'for $c in doc("d.xml")//c '
            'where $c/@id = "1" '
            'return count($c/select-narrow::t)')
        assert evaluate_module_bulk(module, ctx) == [1]


class TestUnsupported:
    def test_udf_raises(self, db):
        ctx = DynamicContext(db.store, strategy=Strategy.LOOP_LIFTED)
        module = parse("declare function f($x) { $x }; f(1)")
        with pytest.raises(UnsupportedFeatureError):
            evaluate_module_bulk(module, ctx)

    def test_primary_midpath_raises(self, db):
        ctx = DynamicContext(db.store, strategy=Strategy.LOOP_LIFTED)
        module = parse('for $x in (1) return doc("d.xml")/s/count(.)')
        with pytest.raises(UnsupportedFeatureError):
            evaluate_module_bulk(module, ctx)


class TestLLStaircaseFastPath:
    def test_descendant_on_stored_doc(self, db):
        ctx = DynamicContext(db.store, strategy=Strategy.LOOP_LIFTED)
        module = parse('for $i in (1, 2) '
                       'return count(doc("d.xml")/s/descendant::t)')
        assert evaluate_module_bulk(module, ctx) == [3, 3]

    def test_descendant_or_self_includes_self(self, db):
        ctx = DynamicContext(db.store, strategy=Strategy.LOOP_LIFTED)
        module = parse(
            'count(doc("d.xml")//c[1]/descendant-or-self::c)')
        assert evaluate_module_bulk(module, ctx) == [1]

    def test_descendant_on_constructed_fragment_falls_back(self, db):
        ctx = DynamicContext(db.store, strategy=Strategy.LOOP_LIFTED)
        module = parse('let $f := <a><b/><b/></a> '
                       'return count($f/descendant::b)')
        assert evaluate_module_bulk(module, ctx) == [2]

    def test_descendant_with_predicate_falls_back(self, db):
        ctx = DynamicContext(db.store, strategy=Strategy.LOOP_LIFTED)
        module = parse(
            'count(doc("d.xml")/s/descendant::t[@start="25"])')
        assert evaluate_module_bulk(module, ctx) == [1]
