"""Tests for the experiment harness (DNF budgets, tables, speedups)."""

import math
import time

import pytest

from repro.bench import (
    DNF,
    Measurement,
    format_table,
    median_runtime,
    run_with_budget,
    speedup,
)


class TestRunWithBudget:
    def test_fast_function_finishes(self):
        elapsed, result = run_with_budget(lambda: 21 * 2, 5.0)
        assert result == 42
        assert elapsed < 1.0

    def test_slow_function_dnfs(self):
        def crawl():
            deadline = time.time() + 10
            while time.time() < deadline:
                pass
            return "done"

        start = time.perf_counter()
        elapsed, result = run_with_budget(crawl, 0.2)
        wall = time.perf_counter() - start
        assert math.isinf(elapsed)
        assert result is None
        assert wall < 2.0          # actually interrupted, not awaited

    def test_zero_budget_means_unlimited(self):
        elapsed, result = run_with_budget(lambda: "ok", 0)
        assert result == "ok"

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError):
            run_with_budget(lambda: (_ for _ in ()).throw(ValueError()),
                            1.0)

    def test_alarm_restored_after_run(self):
        import signal

        run_with_budget(lambda: None, 5.0)
        # no pending alarm afterwards
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0


class TestMedianRuntime:
    def test_median_of_repeats(self):
        calls = []

        def fn():
            calls.append(1)

        result = median_runtime(fn, budget_seconds=5.0, repeats=3)
        assert len(calls) == 3
        assert result >= 0

    def test_dnf_short_circuits(self):
        calls = []

        def slow():
            calls.append(1)
            deadline = time.time() + 10
            while time.time() < deadline:
                pass

        result = median_runtime(slow, budget_seconds=0.1, repeats=5)
        assert math.isinf(result)
        assert len(calls) == 1


class TestReporting:
    def test_measurement_render(self):
        assert Measurement("s", "p", DNF).render() == "DNF"
        assert "0.5" in Measurement("s", "p", 0.5).render()
        assert not Measurement("s", "p", DNF).finished
        assert Measurement("s", "p", 1.0).finished

    def test_format_table_layout(self):
        rows = [
            Measurement("Basic", "1MB", 0.5),
            Measurement("Basic", "2MB", DNF),
            Measurement("Loop-Lifted", "1MB", 0.1),
            Measurement("Loop-Lifted", "2MB", 0.2),
        ]
        table = format_table("Demo", rows)
        lines = table.splitlines()
        assert lines[0] == "Demo"
        assert "1MB" in lines[2] and "2MB" in lines[2]
        assert any("DNF" in line for line in lines)
        assert any(line.startswith("Basic") for line in lines)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert math.isinf(speedup(DNF, 1.0))
        assert math.isinf(speedup(1.0, 0.0))


class TestFigure6Config:
    def test_build_database_labels_size(self):
        from repro.bench import build_database

        db, label = build_database(0.05)
        assert label.endswith("MB")
        assert "xmark.xml" in db.store.uris()


class TestClaimsChecker:
    def test_structural_claims_hold_at_tiny_scale(self):
        """The non-timing claims must hold at any scale; timing-based
        claims are exercised (not asserted) to keep CI stable."""
        from repro.bench.claims import check_claims

        results = check_claims(scale=0.1)
        by_claim = {r.claim: r for r in results}
        assert by_claim["§3.1 table: four joins on Figure 1"].passed
        assert by_claim[
            "§4.6: udf/basic/ll return identical results"].passed
        assert len(results) == 7

    def test_main_exit_codes(self, capsys):
        from repro.bench.claims import main

        code = main(["--scale", "0.1"])
        out = capsys.readouterr().out
        assert "claims hold" in out
        assert code in (0, 1)
