"""The repro.lint static pass: fixture corpus, self-lint, CLI, config.

Two layers.  The fixture corpus under ``tests/lint_fixtures`` exercises
every rule with at least one true positive and one near-miss (linted
with a config whose scope lists point at the fixture directory).  The
self-lint test runs the real configuration over the real tree: the pass
that gates CI must itself report the repo clean.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.config
import repro.lint as lint_mod
from repro.lint import (
    LintConfig,
    RULES,
    iter_lint_files,
    lint_file,
    lint_paths,
    load_config,
)

ROOT = Path(__file__).resolve().parents[1]
FIXTURES = ROOT / "tests" / "lint_fixtures"


def fixture_config(**overrides) -> LintConfig:
    """A config that aims every scoped rule at the fixture corpus."""
    base = dict(
        exclude=(),
        dtype_scope=("tests/lint_fixtures",),
        cancel_safe_modules=("rl006_bad.py", "rl006_ok.py"),
        poll_modules=("rl007_bad.py", "rl007_ok.py"),
        must_poll_functions=("must_poll_fn",),
        lazy_modules=("rl004_bad.py", "rl004_ok.py"),
    )
    base.update(overrides)
    return LintConfig(**base)


def run_fixture(name: str):
    return lint_file(FIXTURES / name, ROOT, fixture_config())


#: (rule id, true-positive fixture, expected findings for that rule,
#:  near-miss fixture that must be clean under *every* rule)
CASES = [
    ("RL000", "rl000_bad.py", 1, "rl000_ok.py"),
    ("RL001", "rl001_bad.py", 3, "rl001_ok.py"),
    ("RL002", "rl002_bad.py", 1, "rl002_ok.py"),
    ("RL003", "rl003_bad.py", 2, "rl003_ok.py"),
    ("RL004", "rl004_bad.py", 2, "rl004_ok.py"),
    ("RL005", "rl005_bad.py", 1, "rl005_ok.py"),
    ("RL006", "rl006_bad.py", 2, "rl006_ok.py"),
    ("RL007", "rl007_bad.py", 3, "rl007_ok.py"),
    ("RL008", "rl008_bad.py", 2, "rl008_ok.py"),
]


class TestFixtureCorpus:
    @pytest.mark.parametrize("rule_id,bad,count,ok", CASES,
                             ids=[case[0] for case in CASES])
    def test_true_positives_and_near_misses(self, rule_id, bad, count, ok):
        flagged = [f for f in run_fixture(bad) if f.rule == rule_id]
        assert len(flagged) == count, \
            f"{bad}: " + "\n".join(f.render() for f in run_fixture(bad))
        clean = run_fixture(ok)
        assert clean == [], \
            f"{ok}: " + "\n".join(f.render() for f in clean)

    def test_every_rule_has_a_fixture_pair(self):
        covered = {case[0] for case in CASES} - {"RL000"}
        assert covered == set(RULES)

    def test_reasonless_suppression_does_not_suppress(self):
        # rl000_bad's bare `lint-ok[RL001]` must both be reported
        # (RL000) and fail to mask the RL001 finding below it.
        rules = {f.rule for f in run_fixture("rl000_bad.py")}
        assert rules == {"RL000", "RL001"}


class TestSuppressions:
    def test_wildcard_with_reason(self, tmp_path):
        target = tmp_path / "generated.py"
        target.write_text(
            "import numpy as np\n"
            "TABLE = np.zeros(4)  # repro: lint-ok[*] generated table\n")
        config = fixture_config(dtype_scope=(target.as_posix(),))
        assert lint_file(target, ROOT, config) == []

    def test_comment_on_line_above(self, tmp_path):
        target = tmp_path / "above.py"
        target.write_text(
            "import numpy as np\n"
            "# repro: lint-ok[RL001] scratch, caller casts\n"
            "TABLE = np.zeros(4)\n")
        config = fixture_config(dtype_scope=(target.as_posix(),))
        assert lint_file(target, ROOT, config) == []

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        target = tmp_path / "wrong.py"
        target.write_text(
            "import numpy as np\n"
            "TABLE = np.zeros(4)  # repro: lint-ok[RL005] not this rule\n")
        config = fixture_config(dtype_scope=(target.as_posix(),))
        assert [f.rule for f in lint_file(target, ROOT, config)] == ["RL001"]

    def test_syntax_error_reported_as_rl000(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        findings = lint_file(target, ROOT, fixture_config())
        assert [f.rule for f in findings] == ["RL000"]


class TestSelfLint:
    def test_repo_is_lint_clean(self):
        """The gating invariant: the default config over the real tree."""
        config = load_config(ROOT)
        findings = lint_paths(
            [ROOT / "src", ROOT / "tests", ROOT / "benchmarks"],
            ROOT, config)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_fixture_corpus_excluded_from_directory_walks(self):
        config = load_config(ROOT)
        walked = iter_lint_files([ROOT / "tests"], ROOT, config)
        assert not any(FIXTURES in path.parents for path in walked)

    def test_explicit_file_overrides_exclusion(self):
        config = load_config(ROOT)
        explicit = iter_lint_files([FIXTURES / "rl001_bad.py"], ROOT, config)
        assert explicit == [FIXTURES / "rl001_bad.py"]

    def test_axis_vocabulary_in_sync_with_config(self):
        # The linter keeps its own copy of the axis names (it must not
        # import the code it checks); this pin is what keeps the copy
        # honest.
        assert tuple(lint_mod.STAIRCASE_AXIS_NAMES) == \
            tuple(repro.config.STAIRCASE_AXIS_NAMES)


def run_cli(*argv: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        cwd=ROOT, env=env, capture_output=True, text=True, timeout=120)


class TestCli:
    def test_clean_file_exits_zero(self):
        proc = run_cli("src/repro/errors.py")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_findings_exit_one(self):
        # RL000 (reasonless suppression) fires regardless of scope, so
        # the default config still flags the fixture when named
        # explicitly.
        proc = run_cli("tests/lint_fixtures/rl000_bad.py")
        assert proc.returncode == 1
        assert "RL000" in proc.stdout
        assert "finding" in proc.stderr

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in sorted(RULES):
            assert rule_id in proc.stdout

    def test_no_paths_is_a_usage_error(self):
        proc = run_cli()
        assert proc.returncode == 2
