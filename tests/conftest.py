"""Shared test fixtures.

The mmap storage backend (``REPRO_STORAGE=mmap``) spills every loaded
document's columns to a store file.  Point the spill directory at a
pytest-managed temp dir for the whole session so tier-1 runs under the
mmap backend never leave stray files behind, and so worker processes
(which inherit the environment) map stores from the same place.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def storage_spill_dir(tmp_path_factory):
    old = os.environ.get("REPRO_STORAGE_DIR")
    path = str(tmp_path_factory.mktemp("repro-stores"))
    os.environ["REPRO_STORAGE_DIR"] = path
    yield path
    if old is None:
        os.environ.pop("REPRO_STORAGE_DIR", None)
    else:
        os.environ["REPRO_STORAGE_DIR"] = old
