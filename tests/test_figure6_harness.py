"""End-to-end test of the Figure 6 harness at a tiny scale."""

import math

from repro.bench import DNF
from repro.bench.figure6 import (
    Figure6Config,
    build_database,
    run_figure6,
    STRATEGY_LABELS,
)


class TestRunFigure6:
    def test_tiny_sweep(self):
        config = Figure6Config(scales=(0.05,), queries=("q1", "q6"),
                               strategies=("basic", "ll"),
                               budget_seconds=60.0)
        result = run_figure6(config)
        assert set(result.measurements) == {"q1", "q6"}
        for query, rows in result.measurements.items():
            assert len(rows) == 2          # 2 strategies x 1 scale
            for measurement in rows:
                assert measurement.finished, (query, measurement)
        tables = result.tables()
        assert "StandOff XMark Q1" in tables
        assert STRATEGY_LABELS["ll"] in tables

    def test_dnf_skip_propagates(self):
        """Once a strategy DNFs it is skipped at larger scales."""
        config = Figure6Config(scales=(0.05, 0.08), queries=("q2",),
                               strategies=("udf",),
                               budget_seconds=1e-4,  # everything DNFs
                               skip_after_dnf=True)
        result = run_figure6(config)
        rows = result.measurements["q2"]
        assert all(math.isinf(m.seconds) for m in rows)

    def test_size_labels_grow_with_scale(self):
        _db1, label1 = build_database(0.05)
        _db2, label2 = build_database(0.1)
        mb1 = float(label1.rstrip("MB"))
        mb2 = float(label2.rstrip("MB"))
        assert mb2 > mb1 > 0
