"""End-to-end test of the Figure 6 harness at a tiny scale."""

import math

import pytest

from repro.bench import DNF
from repro.bench.figure6 import (
    Figure6Config,
    build_database,
    run_figure6,
    STRATEGY_LABELS,
)


class TestRunFigure6:
    def test_tiny_sweep(self):
        config = Figure6Config(scales=(0.05,), queries=("q1", "q6"),
                               strategies=("basic", "ll"),
                               budget_seconds=60.0)
        result = run_figure6(config)
        assert set(result.measurements) == {"q1", "q6"}
        for query, rows in result.measurements.items():
            assert len(rows) == 2          # 2 strategies x 1 scale
            for measurement in rows:
                assert measurement.finished, (query, measurement)
        tables = result.tables()
        assert "StandOff XMark Q1" in tables
        assert STRATEGY_LABELS["ll"] in tables

    def test_dnf_skip_propagates(self):
        """Once a strategy DNFs it is skipped at larger scales."""
        config = Figure6Config(scales=(0.05, 0.08), queries=("q2",),
                               strategies=("udf",),
                               budget_seconds=1e-4,  # everything DNFs
                               skip_after_dnf=True)
        result = run_figure6(config)
        rows = result.measurements["q2"]
        assert all(math.isinf(m.seconds) for m in rows)

    def test_budget_unwind_survives_the_lexer(self, monkeypatch):
        """A timeout firing mid-scan must surface as a DNF, not a bug.

        The harness distinguishes "ran out of budget" (DNF, skip larger
        scales) from "query errored" (test failure).  The lexer's
        string scanner rewords entity errors as XQuerySyntaxError; its
        catch must stay narrow so a BenchmarkTimeout unwinding through
        that frame keeps its type.  Regression for the broad ``except
        Exception`` that RL006 now bans in cancellation-visible
        modules.
        """
        import repro.xquery.lexer as lexer_mod
        from repro.errors import BenchmarkTimeout

        def expired(text, line, col):
            raise BenchmarkTimeout("budget exhausted mid-scan", 1e-4)

        monkeypatch.setattr(lexer_mod, "unescape", expired)
        with pytest.raises(BenchmarkTimeout):
            lexer_mod.Lexer("'literal'").next()

    def test_cancellation_unwind_survives_the_lexer(self, monkeypatch):
        import repro.xquery.lexer as lexer_mod
        from repro.exec.cancel import QueryCancelled

        def cancelled(text, line, col):
            raise QueryCancelled("client went away")

        monkeypatch.setattr(lexer_mod, "unescape", cancelled)
        with pytest.raises(QueryCancelled):
            lexer_mod.Lexer("'literal'").next()

    def test_bad_entity_is_still_a_syntax_error(self):
        from repro.errors import XQuerySyntaxError
        from repro.xquery import parse

        with pytest.raises(XQuerySyntaxError):
            parse("'&bogus;'")

    def test_size_labels_grow_with_scale(self):
        _db1, label1 = build_database(0.05)
        _db2, label2 = build_database(0.1)
        mb1 = float(label1.rstrip("MB"))
        mb2 = float(label2.rstrip("MB"))
        assert mb2 > mb1 > 0
